//! One-shot GA scheduling of a single batch.
//!
//! This is the inner loop of the PN scheduler, exposed standalone because
//! two of the paper's experiments exercise it directly:
//!
//! * **Fig. 3** runs the GA on one batch for 1000 generations recording the
//!   best makespan per generation;
//! * **Fig. 4** measures the wall-clock time of GA runs with 0–20
//!   rebalances per generation.
//!
//! Where fitness evaluation executes is controlled by
//! `config.ga.evaluator` (see [`dts_ga::Evaluator`] and the `perf_eval`
//! bench): the GA engine opens the evaluation context once per
//! [`schedule_batch`] call, so thread-pool workers are spawned once and
//! reused across all generations of the run. The outcome is bit-identical
//! at any worker count.

use dts_distributions::Prng;
use dts_ga::{
    island_sizes, Chromosome, CrossoverOp, CycleCrossover, GaEngine, GaResult, IslandEngine,
    MutationOp, RouletteWheel, SelectionOp, SlotPrecedence, SwapMutation,
};
use dts_model::Task;

use crate::config::PnConfig;
use crate::fitness::{BatchProblem, ProcessorState};
use crate::init::initial_population;

/// Everything a one-batch GA run produces.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-processor queues of **batch slot indices** (positions in the
    /// input task slice), in dispatch order.
    pub queues: Vec<Vec<u32>>,
    /// The winning chromosome.
    pub best: Chromosome,
    /// Estimated makespan of the winning schedule (seconds), including δⱼ
    /// and communication estimates.
    pub best_makespan: f64,
    /// Fitness of the winner, in (0, 1].
    pub best_fitness: f64,
    /// Generations evolved.
    pub generations: u32,
    /// Full GA result (history is populated when
    /// `config.ga.record_history` is set). For an island run
    /// (`config.islands.islands > 1`) this is the ensemble aggregate:
    /// best-of-islands schedule, summed memo counters, rank-interleaved
    /// final population, empty history.
    pub ga: GaResult,
    /// Per-island results when the run was sharded
    /// (`config.islands.islands > 1`), in island order; empty for a
    /// monolithic run. Warm-start carry-over reads each island's
    /// `final_population` from here so islands re-seed independently.
    pub islands: Vec<GaResult>,
}

/// Runs the PN genetic algorithm over one batch of tasks.
///
/// `procs[j]` describes processor `j`'s estimated rate, existing load
/// (`Lⱼ`) and per-message communication estimate. `seed` makes the run
/// reproducible. Generation count is capped by `config.ga.max_generations`
/// and optionally `max_generations_override` (the §3.4 processor-idle
/// budget).
pub fn schedule_batch_capped(
    batch: &[Task],
    procs: &[ProcessorState],
    config: &PnConfig,
    max_generations_override: Option<u32>,
    seed: u64,
) -> BatchOutcome {
    // The paper's operators: roulette selection, cycle crossover, swap
    // mutation (§3.3).
    schedule_batch_with_ops(
        batch,
        procs,
        config,
        &RouletteWheel,
        &CycleCrossover,
        &SwapMutation,
        max_generations_override,
        seed,
    )
}

/// [`schedule_batch_capped`] warm-started from `warm_seeds`: chromosomes
/// already remapped onto this batch's shape (see
/// [`crate::init::remap_elite`]), best first. They occupy the head of the
/// initial population; the remainder is filled with fresh §3.3
/// list-scheduled individuals. Seeds whose shape does not match the batch
/// are skipped, so a stale carry-over can never poison the run. An empty
/// slice is exactly [`schedule_batch_capped`].
pub fn schedule_batch_warm(
    batch: &[Task],
    procs: &[ProcessorState],
    config: &PnConfig,
    warm_seeds: &[Chromosome],
    max_generations_override: Option<u32>,
    seed: u64,
) -> BatchOutcome {
    run_batch_ga(
        batch,
        procs,
        config,
        &RouletteWheel,
        &CycleCrossover,
        &SwapMutation,
        warm_seeds,
        &[],
        None,
        max_generations_override,
        None,
        seed,
    )
}

/// [`schedule_batch_capped`] with pluggable GA operators — the entry point
/// of the `ablate_selection` and `ablate_crossover` studies.
#[allow(clippy::too_many_arguments)]
pub fn schedule_batch_with_ops(
    batch: &[Task],
    procs: &[ProcessorState],
    config: &PnConfig,
    selection: &dyn SelectionOp,
    crossover: &dyn CrossoverOp,
    mutation: &dyn MutationOp,
    max_generations_override: Option<u32>,
    seed: u64,
) -> BatchOutcome {
    run_batch_ga(
        batch,
        procs,
        config,
        selection,
        crossover,
        mutation,
        &[],
        &[],
        None,
        max_generations_override,
        None,
        seed,
    )
}

/// The shared one-batch GA runner behind every public entry point
/// ([`schedule_batch`] and friends here, [`crate::plan::plan_batch`] for
/// budgeted calls). `time_budget`, when set, stops the run at the first
/// generation boundary past the deadline
/// ([`dts_ga::StopReason::TimeBudget`]).
///
/// `warm_islands`, when non-empty, provides one warm-seed list per island
/// (already remapped onto this batch, best first — see
/// [`crate::init::remap_islands`]); it is how carry-over re-seeds each
/// island independently. For a monolithic run only its first list is
/// used, exactly like `warm_seeds`. When both are given, `warm_seeds`
/// wins for a monolithic run and `warm_islands` for a sharded one.
///
/// `precedence`, when given (and constrained), makes this a DAG planning
/// run: the problem is built with
/// [`BatchProblem::with_precedence`], so the engine repairs every
/// chromosome into topological order and completion times charge
/// predecessor finishes. `None` — every online call site — is the
/// original independent-task pipeline, untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch_ga(
    batch: &[Task],
    procs: &[ProcessorState],
    config: &PnConfig,
    selection: &dyn SelectionOp,
    crossover: &dyn CrossoverOp,
    mutation: &dyn MutationOp,
    warm_seeds: &[Chromosome],
    warm_islands: &[Vec<Chromosome>],
    precedence: Option<&SlotPrecedence>,
    max_generations_override: Option<u32>,
    time_budget: Option<std::time::Duration>,
    seed: u64,
) -> BatchOutcome {
    assert!(!batch.is_empty(), "cannot schedule an empty batch");
    config.validate().expect("invalid PnConfig");
    let mut rng = Prng::seed_from(seed);

    let mut problem = BatchProblem::new(batch, procs, config);
    if let Some(prec) = precedence {
        problem = problem.with_precedence(prec);
    }
    let shape_ok = |c: &&Chromosome| {
        c.n_tasks() as usize == batch.len()
            && c.n_procs() as usize == procs.len()
            && c.validate().is_ok()
    };

    let n_islands = config.islands.islands;
    if n_islands > 1 {
        // --- island-model run: per-island seed lists, shared RNG fill ---
        let sizes = island_sizes(config.ga.population_size, n_islands);
        let mut seeds: Vec<Vec<Chromosome>> = vec![Vec::new(); n_islands];
        if !warm_islands.is_empty() {
            for (k, island) in warm_islands.iter().enumerate().take(n_islands) {
                seeds[k] = island
                    .iter()
                    .filter(shape_ok)
                    .take(sizes[k])
                    .cloned()
                    .collect();
            }
        } else {
            // A flat warm list is distributed round-robin, so every island
            // gets a share of the carried structure.
            for (i, c) in warm_seeds
                .iter()
                .filter(shape_ok)
                .take(config.ga.population_size)
                .enumerate()
            {
                seeds[i % n_islands].push(c.clone());
            }
        }
        // Fill each island to its exact size with fresh §3.3 individuals,
        // in island order from the single run RNG — deterministic, and no
        // seed list ever needs cycling.
        for (k, size) in sizes.iter().enumerate() {
            seeds[k].truncate(*size);
            let missing = size - seeds[k].len();
            if missing > 0 {
                let fill = initial_population(
                    batch,
                    procs,
                    missing,
                    config.init_random_fraction,
                    &mut rng,
                );
                seeds[k].extend(fill);
            }
        }

        let engine = IslandEngine::new(
            selection,
            crossover,
            mutation,
            config.ga.clone(),
            config.islands.clone(),
        )
        .expect("validated PnConfig");
        let result = engine.run_budgeted(
            &problem,
            &seeds,
            max_generations_override,
            time_budget,
            &mut rng,
        );

        let ga = GaResult {
            best: result.best.clone(),
            best_makespan: result.best_makespan,
            best_fitness: result.best_fitness,
            generations: result.generations,
            stop_reason: result.stop_reason,
            history: Vec::new(),
            final_population: result.merged_final_population(),
            memo_hits: result.memo_hits,
            memo_misses: result.memo_misses,
        };
        return BatchOutcome {
            queues: ga.best.to_queues(),
            best: ga.best.clone(),
            best_makespan: ga.best_makespan,
            best_fitness: ga.best_fitness,
            generations: ga.generations,
            ga,
            islands: result.islands,
        };
    }

    // --- monolithic run (the paper's GA), byte-for-byte the pre-island
    // pipeline ---
    let flat_warm: &[Chromosome] = if !warm_seeds.is_empty() {
        warm_seeds
    } else {
        warm_islands.first().map(Vec::as_slice).unwrap_or(&[])
    };
    let mut initial: Vec<Chromosome> = flat_warm
        .iter()
        .filter(shape_ok)
        .take(config.ga.population_size)
        .cloned()
        .collect();
    if initial.len() < config.ga.population_size {
        initial.extend(initial_population(
            batch,
            procs,
            config.ga.population_size - initial.len(),
            config.init_random_fraction,
            &mut rng,
        ));
    }

    let engine = GaEngine::new(selection, crossover, mutation, config.ga.clone());
    let ga = engine.run_budgeted(
        &problem,
        initial,
        max_generations_override,
        time_budget,
        &mut rng,
    );

    BatchOutcome {
        queues: ga.best.to_queues(),
        best: ga.best.clone(),
        best_makespan: ga.best_makespan,
        best_fitness: ga.best_fitness,
        generations: ga.generations,
        ga,
        islands: Vec::new(),
    }
}

/// [`schedule_batch_capped`] without a generation override.
pub fn schedule_batch(
    batch: &[Task],
    procs: &[ProcessorState],
    config: &PnConfig,
    seed: u64,
) -> BatchOutcome {
    schedule_batch_capped(batch, procs, config, None, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::{SimTime, TaskId};

    fn batch(sizes: &[f64]) -> Vec<Task> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| Task::new(TaskId(i as u32), m, SimTime::ZERO))
            .collect()
    }

    fn procs(rates: &[f64]) -> Vec<ProcessorState> {
        rates
            .iter()
            .map(|&rate| ProcessorState {
                rate,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            })
            .collect()
    }

    fn quick_config(max_gens: u32) -> PnConfig {
        let mut c = PnConfig::default();
        c.ga.max_generations = max_gens;
        c
    }

    #[test]
    fn all_tasks_scheduled_exactly_once() {
        let b = batch(&[100.0, 200.0, 50.0, 300.0, 75.0, 25.0, 500.0]);
        let p = procs(&[100.0, 150.0, 80.0]);
        let out = schedule_batch(&b, &p, &quick_config(100), 1);
        let mut seen: Vec<u32> = out.queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        let b = batch(&[100.0, 200.0, 50.0, 300.0]);
        let p = procs(&[100.0, 150.0]);
        let a = schedule_batch(&b, &p, &quick_config(50), 7);
        let c = schedule_batch(&b, &p, &quick_config(50), 7);
        assert_eq!(a.queues, c.queues);
        assert_eq!(a.best_makespan, c.best_makespan);
    }

    #[test]
    fn ga_beats_the_worst_individual() {
        // With heterogeneous rates and sizes, the evolved makespan must be
        // no worse than a naive all-on-one-processor plan.
        let b = batch(&[500.0, 400.0, 300.0, 200.0, 100.0, 50.0, 25.0, 12.0]);
        let p = procs(&[60.0, 120.0, 240.0]);
        let out = schedule_batch(&b, &p, &quick_config(200), 3);
        let total: f64 = b.iter().map(|t| t.mflops).sum();
        let naive = total / 60.0; // everything on the slowest
        assert!(out.best_makespan < naive);
        // And at least as good as the theoretical optimum allows.
        let ideal = total / (60.0 + 120.0 + 240.0);
        assert!(out.best_makespan >= ideal - 1e-9);
    }

    #[test]
    fn generation_override_is_respected() {
        let b = batch(&[100.0; 20]);
        let p = procs(&[100.0, 100.0]);
        let out = schedule_batch_capped(&b, &p, &quick_config(1000), Some(3), 5);
        assert_eq!(out.generations, 3);
    }

    #[test]
    fn history_recorded_when_requested() {
        let b = batch(&[100.0; 10]);
        let p = procs(&[100.0, 100.0]);
        let mut cfg = quick_config(20);
        cfg.ga.record_history = true;
        let out = schedule_batch(&b, &p, &cfg, 5);
        assert_eq!(out.ga.history.len(), out.generations as usize + 1);
    }

    #[test]
    fn parallel_evaluation_matches_serial_bitwise() {
        let b = batch(&[520.0, 260.0, 130.0, 390.0, 65.0, 910.0, 45.0, 700.0]);
        let p = procs(&[100.0, 150.0, 80.0]);
        let serial = schedule_batch(&b, &p, &quick_config(80), 21);
        for workers in [2, 8] {
            let cfg = quick_config(80).with_eval_workers(workers);
            let par = schedule_batch(&b, &p, &cfg, 21);
            assert_eq!(par.queues, serial.queues, "workers={workers}");
            assert_eq!(par.best, serial.best);
            assert_eq!(par.best_makespan.to_bits(), serial.best_makespan.to_bits());
            assert_eq!(par.best_fitness.to_bits(), serial.best_fitness.to_bits());
            assert_eq!(par.generations, serial.generations);
        }
    }

    #[test]
    fn warm_seeds_enter_the_population() {
        // A 1-generation run with a perfect warm seed: elitism keeps the
        // seed, so the outcome can be no worse than the seeded schedule.
        let b = batch(&[100.0, 100.0, 100.0, 100.0]);
        let p = procs(&[100.0, 100.0]);
        let seeded = Chromosome::from_queues(&[vec![0, 1], vec![2, 3]]);
        let mut cfg = quick_config(1);
        cfg.init_random_fraction = (1.0, 1.0); // fresh fill is all-random
        let out = schedule_batch_warm(&b, &p, &cfg, std::slice::from_ref(&seeded), None, 11);
        // The balanced seed achieves the 2.0 s optimum.
        assert!(
            (out.best_makespan - 2.0).abs() < 1e-9,
            "{}",
            out.best_makespan
        );
    }

    #[test]
    fn warm_run_with_empty_seeds_matches_fresh() {
        let b = batch(&[100.0, 200.0, 50.0, 300.0]);
        let p = procs(&[100.0, 150.0]);
        let fresh = schedule_batch(&b, &p, &quick_config(50), 7);
        let warm = schedule_batch_warm(&b, &p, &quick_config(50), &[], None, 7);
        assert_eq!(fresh.queues, warm.queues);
        assert_eq!(fresh.best_makespan.to_bits(), warm.best_makespan.to_bits());
    }

    #[test]
    fn mismatched_warm_seeds_are_skipped() {
        // Seeds shaped for a different batch/cluster must be ignored, not
        // crash or corrupt the run.
        let b = batch(&[100.0, 200.0, 50.0]);
        let p = procs(&[100.0, 150.0]);
        let wrong_tasks = Chromosome::from_queues(&[vec![0, 1, 2, 3], vec![]]);
        let wrong_procs = Chromosome::from_queues(&[vec![0], vec![1], vec![2]]);
        let out = schedule_batch_warm(
            &b,
            &p,
            &quick_config(20),
            &[wrong_tasks, wrong_procs],
            None,
            13,
        );
        let mut seen: Vec<u32> = out.queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn outcome_exposes_final_population() {
        let b = batch(&[100.0, 200.0, 50.0, 300.0]);
        let p = procs(&[100.0, 150.0]);
        let out = schedule_batch(&b, &p, &quick_config(30), 17);
        let pop = &out.ga.final_population;
        assert_eq!(pop.len(), PnConfig::default().ga.population_size);
        assert!(pop.iter().all(|c| c.validate().is_ok()));
    }

    #[test]
    #[should_panic]
    fn empty_batch_rejected() {
        let p = procs(&[100.0]);
        let _ = schedule_batch(&[], &p, &PnConfig::default(), 1);
    }

    #[test]
    fn single_processor_batch_works() {
        let b = batch(&[10.0, 20.0, 30.0]);
        let p = procs(&[100.0]);
        let out = schedule_batch(&b, &p, &quick_config(10), 2);
        assert_eq!(out.queues.len(), 1);
        assert_eq!(out.queues[0].len(), 3);
        assert!((out.best_makespan - 0.6).abs() < 1e-9);
    }
}
