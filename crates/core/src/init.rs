//! Initial-population generation (§3.3).
//!
//! > "The initial population is generated using a list scheduling
//! > heuristic. A percentage of tasks are randomly assigned to processors
//! > with the remaining tasks being assigned to the processors that will
//! > finish processing them the earliest. This leads to a well balanced
//! > randomised initial population."
//!
//! The percentage is drawn per individual from a configurable range
//! (DESIGN.md §5.3): low fractions give near-greedy seeds, high fractions
//! give diverse random seeds; mixing both makes the initial population
//! "well balanced \[and\] randomised".

use dts_distributions::{Prng, Rng};
use dts_ga::Chromosome;
use dts_model::Task;

use crate::fitness::ProcessorState;

/// Generates one list-scheduled individual with the given random fraction.
///
/// Tasks are visited in shuffled order; a `random_fraction` share of them
/// is placed uniformly at random, the rest go to the processor that would
/// finish them earliest given everything placed so far (including existing
/// load and communication estimates).
pub fn list_scheduled_individual(
    batch: &[Task],
    procs: &[ProcessorState],
    random_fraction: f64,
    rng: &mut Prng,
) -> Chromosome {
    assert!(!procs.is_empty());
    let m = procs.len();
    let h = batch.len();

    let mut order: Vec<u32> = (0..h as u32).collect();
    rng.shuffle(&mut order);
    let n_random = ((h as f64) * random_fraction.clamp(0.0, 1.0)).round() as usize;

    let mut queues: Vec<Vec<u32>> = vec![Vec::new(); m];
    // Running completion estimate per processor: δⱼ + assigned work.
    let mut completion: Vec<f64> = procs.iter().map(ProcessorState::delta).collect();

    for (k, &slot) in order.iter().enumerate() {
        let t = &batch[slot as usize];
        let j = if k < n_random {
            rng.below(m)
        } else {
            // Earliest finish: argminⱼ (completionⱼ + t/Pⱼ + commⱼ).
            let mut best = 0usize;
            let mut best_finish = f64::INFINITY;
            for (j, p) in procs.iter().enumerate() {
                let finish = completion[j] + t.mflops / p.rate + p.comm_cost;
                if finish < best_finish {
                    best_finish = finish;
                    best = j;
                }
            }
            best
        };
        completion[j] += t.mflops / procs[j].rate + procs[j].comm_cost;
        queues[j].push(slot);
    }

    Chromosome::from_queues(&queues)
}

/// Generates a whole initial population. Each individual draws its own
/// random fraction from `fraction_range`.
pub fn initial_population(
    batch: &[Task],
    procs: &[ProcessorState],
    population_size: usize,
    fraction_range: (f64, f64),
    rng: &mut Prng,
) -> Vec<Chromosome> {
    let (lo, hi) = fraction_range;
    (0..population_size)
        .map(|_| {
            let f = if hi > lo { rng.range_f64(lo, hi) } else { lo };
            list_scheduled_individual(batch, procs, f, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::{SimTime, TaskId};

    fn batch(n: usize, size: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(TaskId(i as u32), size, SimTime::ZERO))
            .collect()
    }

    fn uniform_procs(n: usize, rate: f64) -> Vec<ProcessorState> {
        (0..n)
            .map(|_| ProcessorState {
                rate,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            })
            .collect()
    }

    #[test]
    fn individuals_are_valid_permutations() {
        let b = batch(37, 10.0);
        let p = uniform_procs(5, 100.0);
        let mut rng = Prng::seed_from(1);
        for f in [0.0, 0.3, 1.0] {
            let c = list_scheduled_individual(&b, &p, f, &mut rng);
            assert!(c.validate().is_ok());
            assert_eq!(c.n_tasks(), 37);
            assert_eq!(c.n_procs(), 5);
        }
    }

    #[test]
    fn zero_fraction_is_well_balanced() {
        // Pure earliest-finish on identical processors/tasks balances the
        // queues to within one task.
        let b = batch(50, 10.0);
        let p = uniform_procs(5, 100.0);
        let mut rng = Prng::seed_from(2);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        let lens = c.queue_lengths();
        assert!(lens.iter().all(|&l| l == 10), "{lens:?}");
    }

    #[test]
    fn greedy_respects_heterogeneous_rates() {
        // A 4× faster processor should receive roughly 4× the work.
        let b = batch(100, 10.0);
        let p = vec![
            ProcessorState {
                rate: 400.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(3);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        let lens = c.queue_lengths();
        assert!(
            lens[0] >= 75 && lens[0] <= 85,
            "fast processor got {} of 100",
            lens[0]
        );
    }

    #[test]
    fn greedy_accounts_for_existing_load() {
        // Processor 0 is pre-loaded; the greedy pass must favour 1 first.
        let b = batch(2, 10.0);
        let p = vec![
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 10_000.0,
                comm_cost: 0.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(4);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        assert_eq!(c.queue_lengths(), vec![0, 2]);
    }

    #[test]
    fn greedy_avoids_expensive_links() {
        let b = batch(1, 10.0);
        let p = vec![
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 100.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(5);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        assert_eq!(c.queue_lengths(), vec![0, 1]);
    }

    #[test]
    fn full_random_fraction_spreads_loosely() {
        let b = batch(200, 10.0);
        let p = uniform_procs(4, 100.0);
        let mut rng = Prng::seed_from(6);
        let c = list_scheduled_individual(&b, &p, 1.0, &mut rng);
        let lens = c.queue_lengths();
        // Random placement: every processor gets something, but exact
        // balance is unlikely.
        assert!(lens.iter().all(|&l| l > 0));
        assert_eq!(lens.iter().sum::<usize>(), 200);
    }

    #[test]
    fn population_has_requested_size_and_diversity() {
        let b = batch(60, 10.0);
        let p = uniform_procs(6, 100.0);
        let mut rng = Prng::seed_from(7);
        let pop = initial_population(&b, &p, 20, (0.5, 1.0), &mut rng);
        assert_eq!(pop.len(), 20);
        assert!(pop.iter().all(|c| c.validate().is_ok()));
        let distinct: std::collections::HashSet<_> = pop.iter().collect();
        assert!(distinct.len() > 10, "population should be diverse");
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = uniform_procs(3, 100.0);
        let mut rng = Prng::seed_from(8);
        let c = list_scheduled_individual(&[], &p, 0.5, &mut rng);
        assert_eq!(c.n_tasks(), 0);
        assert!(c.validate().is_ok());
    }
}
