//! Initial-population generation (§3.3).
//!
//! > "The initial population is generated using a list scheduling
//! > heuristic. A percentage of tasks are randomly assigned to processors
//! > with the remaining tasks being assigned to the processors that will
//! > finish processing them the earliest. This leads to a well balanced
//! > randomised initial population."
//!
//! The percentage is drawn per individual from a configurable range
//! (DESIGN.md §5.3): low fractions give near-greedy seeds, high fractions
//! give diverse random seeds; mixing both makes the initial population
//! "well balanced \[and\] randomised".

use dts_distributions::{Prng, Rng};
use dts_ga::Chromosome;
use dts_model::Task;

use crate::fitness::ProcessorState;

/// Generates one list-scheduled individual with the given random fraction.
///
/// Tasks are visited in shuffled order; a `random_fraction` share of them
/// is placed uniformly at random, the rest go to the processor that would
/// finish them earliest given everything placed so far (including existing
/// load and communication estimates).
pub fn list_scheduled_individual(
    batch: &[Task],
    procs: &[ProcessorState],
    random_fraction: f64,
    rng: &mut Prng,
) -> Chromosome {
    assert!(!procs.is_empty());
    let m = procs.len();
    let h = batch.len();

    let mut order: Vec<u32> = (0..h as u32).collect();
    rng.shuffle(&mut order);
    let n_random = ((h as f64) * random_fraction.clamp(0.0, 1.0)).round() as usize;

    let mut queues: Vec<Vec<u32>> = vec![Vec::new(); m];
    // Running completion estimate per processor: δⱼ + assigned work.
    let mut completion: Vec<f64> = procs.iter().map(ProcessorState::delta).collect();

    for (k, &slot) in order.iter().enumerate() {
        let t = &batch[slot as usize];
        let j = if k < n_random {
            rng.below(m)
        } else {
            earliest_finish_proc(&completion, t, procs)
        };
        completion[j] += t.mflops / procs[j].rate + procs[j].comm_cost;
        queues[j].push(slot);
    }

    Chromosome::from_queues(&queues)
}

/// The §3.3 greedy placement step, shared by the list-scheduling
/// initialiser and the warm-start remap: index of the processor that
/// would finish `t` earliest — argminⱼ (completionⱼ + t/Pⱼ + commⱼ).
fn earliest_finish_proc(completion: &[f64], t: &Task, procs: &[ProcessorState]) -> usize {
    let mut best = 0usize;
    let mut best_finish = f64::INFINITY;
    for (j, p) in procs.iter().enumerate() {
        let finish = completion[j] + t.mflops / p.rate + p.comm_cost;
        if finish < best_finish {
            best_finish = finish;
            best = j;
        }
    }
    best
}

/// Remaps a chromosome evolved for a *previous* batch onto a new batch's
/// shape, for warm-starting the next GA run
/// ([`crate::config::SeedStrategy::CarryOver`]).
///
/// Genes are batch-local slot indices, so a carried elite cannot be reused
/// verbatim: the new batch has different tasks, a different size, and
/// possibly a different processor count. The remap keeps what *is*
/// transferable — the processor-queue structure:
///
/// * slots that exist in both batches (`slot < batch.len()`) keep their
///   processor and their relative queue position;
/// * slots the old batch had but the new one lacks are dropped;
/// * slots the new batch adds (or whose processor no longer exists) are
///   placed on the earliest-finishing processor given everything placed so
///   far — the greedy arm of the §3.3 initialiser.
///
/// The result is always a valid chromosome for `(batch, procs)`, and the
/// function draws no randomness, so warm-started runs stay deterministic.
pub fn remap_elite(prev: &Chromosome, batch: &[Task], procs: &[ProcessorState]) -> Chromosome {
    assert!(!procs.is_empty());
    let m = procs.len();
    let h = batch.len();

    let mut queues: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut placed = vec![false; h];
    for (p, slot) in prev.assignments() {
        if p < m && (slot as usize) < h {
            placed[slot as usize] = true;
            queues[p].push(slot);
        }
    }

    // Completion estimate per processor over what was kept, then fill the
    // missing slots earliest-finish (ascending slot order: deterministic).
    let mut completion: Vec<f64> = procs.iter().map(ProcessorState::delta).collect();
    for (j, q) in queues.iter().enumerate() {
        for &slot in q {
            completion[j] += batch[slot as usize].mflops / procs[j].rate + procs[j].comm_cost;
        }
    }
    for (slot, done) in placed.iter().enumerate() {
        if *done {
            continue;
        }
        let t = &batch[slot];
        let best = earliest_finish_proc(&completion, t, procs);
        completion[best] += t.mflops / procs[best].rate + procs[best].comm_cost;
        queues[best].push(slot as u32);
    }

    Chromosome::from_queues(&queues)
}

/// Remaps per-island carried populations onto a new batch's shape for
/// island-model warm starts: island `k` of the output is the first
/// `elites` chromosomes of `carried[k]`, each remapped with
/// [`remap_elite`] against the *same* `(batch, procs)`.
///
/// Every island is remapped independently — elites never move between
/// islands here (migration is the GA engine's job, not the carry-over's),
/// so each island's evolved niche survives a batch-shape change intact.
/// Like [`remap_elite`] this draws no randomness.
pub fn remap_islands(
    carried: &[Vec<Chromosome>],
    elites: usize,
    batch: &[Task],
    procs: &[ProcessorState],
) -> Vec<Vec<Chromosome>> {
    carried
        .iter()
        .map(|island| {
            island
                .iter()
                .take(elites)
                .map(|c| remap_elite(c, batch, procs))
                .collect()
        })
        .collect()
}

/// Generates a whole initial population. Each individual draws its own
/// random fraction from `fraction_range`.
pub fn initial_population(
    batch: &[Task],
    procs: &[ProcessorState],
    population_size: usize,
    fraction_range: (f64, f64),
    rng: &mut Prng,
) -> Vec<Chromosome> {
    let (lo, hi) = fraction_range;
    (0..population_size)
        .map(|_| {
            let f = if hi > lo { rng.range_f64(lo, hi) } else { lo };
            list_scheduled_individual(batch, procs, f, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::{SimTime, TaskId};

    fn batch(n: usize, size: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(TaskId(i as u32), size, SimTime::ZERO))
            .collect()
    }

    fn uniform_procs(n: usize, rate: f64) -> Vec<ProcessorState> {
        (0..n)
            .map(|_| ProcessorState {
                rate,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            })
            .collect()
    }

    #[test]
    fn individuals_are_valid_permutations() {
        let b = batch(37, 10.0);
        let p = uniform_procs(5, 100.0);
        let mut rng = Prng::seed_from(1);
        for f in [0.0, 0.3, 1.0] {
            let c = list_scheduled_individual(&b, &p, f, &mut rng);
            assert!(c.validate().is_ok());
            assert_eq!(c.n_tasks(), 37);
            assert_eq!(c.n_procs(), 5);
        }
    }

    #[test]
    fn zero_fraction_is_well_balanced() {
        // Pure earliest-finish on identical processors/tasks balances the
        // queues to within one task.
        let b = batch(50, 10.0);
        let p = uniform_procs(5, 100.0);
        let mut rng = Prng::seed_from(2);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        let lens = c.queue_lengths();
        assert!(lens.iter().all(|&l| l == 10), "{lens:?}");
    }

    #[test]
    fn greedy_respects_heterogeneous_rates() {
        // A 4× faster processor should receive roughly 4× the work.
        let b = batch(100, 10.0);
        let p = vec![
            ProcessorState {
                rate: 400.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(3);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        let lens = c.queue_lengths();
        assert!(
            lens[0] >= 75 && lens[0] <= 85,
            "fast processor got {} of 100",
            lens[0]
        );
    }

    #[test]
    fn greedy_accounts_for_existing_load() {
        // Processor 0 is pre-loaded; the greedy pass must favour 1 first.
        let b = batch(2, 10.0);
        let p = vec![
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 10_000.0,
                comm_cost: 0.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(4);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        assert_eq!(c.queue_lengths(), vec![0, 2]);
    }

    #[test]
    fn greedy_avoids_expensive_links() {
        let b = batch(1, 10.0);
        let p = vec![
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 100.0,
            },
            ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            },
        ];
        let mut rng = Prng::seed_from(5);
        let c = list_scheduled_individual(&b, &p, 0.0, &mut rng);
        assert_eq!(c.queue_lengths(), vec![0, 1]);
    }

    #[test]
    fn full_random_fraction_spreads_loosely() {
        let b = batch(200, 10.0);
        let p = uniform_procs(4, 100.0);
        let mut rng = Prng::seed_from(6);
        let c = list_scheduled_individual(&b, &p, 1.0, &mut rng);
        let lens = c.queue_lengths();
        // Random placement: every processor gets something, but exact
        // balance is unlikely.
        assert!(lens.iter().all(|&l| l > 0));
        assert_eq!(lens.iter().sum::<usize>(), 200);
    }

    #[test]
    fn population_has_requested_size_and_diversity() {
        let b = batch(60, 10.0);
        let p = uniform_procs(6, 100.0);
        let mut rng = Prng::seed_from(7);
        let pop = initial_population(&b, &p, 20, (0.5, 1.0), &mut rng);
        assert_eq!(pop.len(), 20);
        assert!(pop.iter().all(|c| c.validate().is_ok()));
        // Distinctness via the content digest (sort + dedup): no hash-set,
        // so the diversity count is iteration-order-free.
        let mut digests: Vec<u128> = pop.iter().map(|c| c.content_hash()).collect();
        digests.sort_unstable();
        digests.dedup();
        assert!(digests.len() > 10, "population should be diverse");
    }

    #[test]
    fn remap_preserves_overlapping_structure() {
        // A 6-task elite remapped onto a 6-task batch of the same shape is
        // unchanged.
        let prev = Chromosome::from_queues(&[vec![0, 3], vec![1, 4], vec![2, 5]]);
        let b = batch(6, 10.0);
        let p = uniform_procs(3, 100.0);
        let c = remap_elite(&prev, &b, &p);
        assert_eq!(c, prev);
    }

    #[test]
    fn remap_shrinks_to_smaller_batch() {
        let prev = Chromosome::from_queues(&[vec![0, 3, 6], vec![1, 4, 7], vec![2, 5, 8]]);
        let b = batch(5, 10.0);
        let p = uniform_procs(3, 100.0);
        let c = remap_elite(&prev, &b, &p);
        assert!(c.validate().is_ok());
        assert_eq!(c.n_tasks(), 5);
        // Surviving slots keep their processors: 0,3 → P0; 1,4 → P1; 2 → P2.
        assert_eq!(c.to_queues(), vec![vec![0, 3], vec![1, 4], vec![2]]);
    }

    #[test]
    fn remap_grows_to_larger_batch_earliest_finish() {
        let prev = Chromosome::from_queues(&[vec![0], vec![1]]);
        let b = batch(4, 10.0);
        let p = uniform_procs(2, 100.0);
        let c = remap_elite(&prev, &b, &p);
        assert!(c.validate().is_ok());
        assert_eq!(c.n_tasks(), 4);
        // The two new slots fill the two equally loaded processors.
        assert_eq!(c.queue_lengths(), vec![2, 2]);
    }

    #[test]
    fn remap_handles_processor_count_changes() {
        let prev = Chromosome::from_queues(&[vec![0, 2], vec![1, 3], vec![4]]);
        let b = batch(5, 10.0);
        // Cluster shrank 3 → 2: P2's tasks must be re-placed.
        let c2 = remap_elite(&prev, &b, &uniform_procs(2, 100.0));
        assert!(c2.validate().is_ok());
        assert_eq!(c2.n_procs(), 2);
        assert_eq!(c2.queue_lengths().iter().sum::<usize>(), 5);
        // Cluster grew 3 → 4: the old structure persists, P3 starts empty
        // (no slots were missing so nothing is placed on it).
        let c4 = remap_elite(&prev, &b, &uniform_procs(4, 100.0));
        assert!(c4.validate().is_ok());
        assert_eq!(
            c4.to_queues(),
            vec![vec![0, 2], vec![1, 3], vec![4], vec![]]
        );
    }

    #[test]
    fn remap_is_always_valid_across_shapes() {
        // Sweep old-batch × new-batch × proc-count combinations; validate()
        // must hold for every remapped chromosome (the carried population
        // can never poison the next run).
        let mut rng = Prng::seed_from(9);
        for &h_old in &[1usize, 3, 8, 20] {
            for &m_old in &[1usize, 2, 5] {
                let old_batch = batch(h_old, 10.0);
                let old_procs = uniform_procs(m_old, 100.0);
                let prev = list_scheduled_individual(&old_batch, &old_procs, 0.5, &mut rng);
                for &h_new in &[1usize, 2, 8, 31] {
                    for &m_new in &[1usize, 2, 4] {
                        let b = batch(h_new, 10.0);
                        let p = uniform_procs(m_new, 100.0);
                        let c = remap_elite(&prev, &b, &p);
                        assert!(
                            c.validate().is_ok(),
                            "remap {h_old}x{m_old} -> {h_new}x{m_new}: {:?}",
                            c.validate()
                        );
                        assert_eq!(c.n_tasks() as usize, h_new);
                        assert_eq!(c.n_procs() as usize, m_new);
                    }
                }
            }
        }
    }

    #[test]
    fn remap_islands_remaps_each_island_independently() {
        // Regression test for island warm-start: remap_elite used to be
        // exercised with one flat population only; the per-island remap
        // must be exactly "remap_elite per chromosome, island by island" —
        // never a remap of the concatenation, which would let the greedy
        // fill of one island's elite see (and react to) another island's.
        let island_a = vec![
            Chromosome::from_queues(&[vec![0, 1, 2], vec![3, 4], vec![5]]),
            Chromosome::from_queues(&[vec![0], vec![1, 2, 3], vec![4, 5]]),
        ];
        let island_b = vec![
            Chromosome::from_queues(&[vec![5, 4], vec![3, 2], vec![1, 0]]),
            Chromosome::from_queues(&[vec![], vec![], vec![0, 1, 2, 3, 4, 5]]),
        ];
        let carried = vec![island_a.clone(), island_b.clone()];
        // Shape change: 6 tasks → 8 tasks (two slots must be greedy-filled).
        let b = batch(8, 10.0);
        let p = uniform_procs(3, 100.0);

        let out = remap_islands(&carried, 2, &b, &p);
        assert_eq!(out.len(), 2, "island count preserved");
        for (k, island) in [island_a, island_b].iter().enumerate() {
            assert_eq!(out[k].len(), 2);
            for (i, prev) in island.iter().enumerate() {
                // Bit-for-bit the single-population remap of that elite:
                // no cross-island state leaks into the greedy fill.
                assert_eq!(out[k][i], remap_elite(prev, &b, &p), "island {k} elite {i}");
                assert!(out[k][i].validate().is_ok());
            }
        }
        // The two islands carried different structures and must still
        // differ after the remap — a mixed-up carry would collapse them.
        assert_ne!(out[0], out[1], "islands' elites must not be mixed");
    }

    #[test]
    fn remap_islands_truncates_to_elites_per_island() {
        let island: Vec<Chromosome> = (0..4)
            .map(|i| Chromosome::from_queues(&[vec![i], (0..4).filter(|&s| s != i).collect()]))
            .collect();
        let carried = vec![island.clone(), island];
        let b = batch(4, 10.0);
        let p = uniform_procs(2, 100.0);
        let out = remap_islands(&carried, 2, &b, &p);
        assert!(out.iter().all(|isl| isl.len() == 2), "per-island elite cap");
    }

    #[test]
    fn empty_batch_is_fine() {
        let p = uniform_procs(3, 100.0);
        let mut rng = Prng::seed_from(8);
        let c = list_scheduled_individual(&[], &p, 0.5, &mut rng);
        assert_eq!(c.n_tasks(), 0);
        assert!(c.validate().is_ok());
    }
}
