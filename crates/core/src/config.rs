//! Configuration of the PN scheduler.

use dts_ga::{Evaluator, GaConfig, IslandConfig};

use crate::time_model::GaTimeModel;

/// How the GA's initial population is seeded on each `plan` invocation.
///
/// The paper reseeds every batch from scratch via the §3.3 list-scheduling
/// initialiser. `CarryOver` instead warm-starts each run from the previous
/// batch's fittest schedules: because genes are batch-local slot indices,
/// the carried elites are first *remapped* onto the new batch's shape
/// ([`crate::init::remap_elite`]) — overlapping slots keep their
/// processor-queue positions, new slots are placed earliest-finish — and
/// the remainder of the population is filled with fresh list-scheduled
/// individuals. Warm-starting transfers the evolved load-balance structure
/// across invocations, so the GA needs fewer generations to re-converge in
/// dynamic-arrival scenarios (see `perf_warmstart` / BENCH_warm_start.json).
///
/// Either strategy is deterministic: the carried population is itself a
/// pure function of the seeds, and the remap draws no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedStrategy {
    /// Reseed from scratch every invocation (the paper's behaviour).
    #[default]
    Fresh,
    /// Carry the best `elites` schedules of the previous run forward as
    /// warm-start seeds (capped by the population size).
    CarryOver {
        /// How many of the previous run's best schedules to carry.
        elites: usize,
    },
}

impl SeedStrategy {
    /// True for [`SeedStrategy::CarryOver`].
    pub fn is_carry_over(self) -> bool {
        matches!(self, SeedStrategy::CarryOver { .. })
    }
}

/// All knobs of the PN scheduler. [`PnConfig::default`] reproduces the
/// paper's §4.2 setup: micro-GA population of 20, up to 1000 generations,
/// one rebalance per individual per generation with 5 probes, batch size
/// 200, communication estimation enabled.
///
/// Fitness evaluation runs serially by default; set
/// `ga.evaluator` (or call [`PnConfig::with_eval_workers`]) to evaluate
/// each generation's population on a thread pool. The schedule produced is
/// bit-identical either way:
///
/// ```
/// use dts_core::PnConfig;
/// use dts_ga::Evaluator;
///
/// let cfg = PnConfig::default().with_eval_workers(4);
/// assert_eq!(cfg.ga.evaluator, Evaluator::ThreadPool { workers: 4 });
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PnConfig {
    /// The underlying GA engine configuration.
    pub ga: GaConfig,
    /// Rebalance attempts per individual per generation (§3.5; Fig. 3
    /// studies 0, 1 and 50 — the paper settles on 1 "to enable the
    /// algorithm to run quickly").
    pub rebalances_per_generation: u32,
    /// Random probes for a larger task in the heaviest queue per rebalance
    /// attempt ("we only allow a maximum of 5 random searches").
    pub rebalance_probes: u32,
    /// Range of the per-individual fraction of tasks placed randomly by the
    /// list-scheduling initialiser (§3.3 leaves the percentage open; the
    /// remainder is placed earliest-finish).
    pub init_random_fraction: (f64, f64),
    /// Batch size for the first invocation, before any smoothed idle-time
    /// signal exists (the paper's experiments use 200).
    pub initial_batch: usize,
    /// Multiplier applied to the §3.7 rule `H = ⌊√(Γs + 1)⌋`. The raw rule
    /// yields impractically small batches for second-scale `s`; the
    /// multiplier preserves the rule's *shape* (monotone in the smoothed
    /// idle horizon) while letting experiments hit the paper's H ≈ 200
    /// regime. Documented in DESIGN.md §5.
    pub batch_scale: f64,
    /// Hard upper bound on a batch.
    pub max_batch: usize,
    /// Smoothing factor ν for the batch-size signal Γ(s_p) (§3.6–3.7).
    pub batch_nu: f64,
    /// Generations always granted even when a processor is about to idle.
    pub min_generations: u32,
    /// Modelled GA compute time charged to the scheduler host.
    pub time_model: GaTimeModel,
    /// Use smoothed communication estimates in the fitness (the paper's
    /// key differentiator). Disabling gives the `no-comm` ablation.
    pub use_comm_estimates: bool,
    /// How each `plan` invocation seeds its GA population: fresh §3.3
    /// list-scheduling (the paper), or warm-started from the previous
    /// batch's elites.
    pub seed_strategy: SeedStrategy,
    /// Island-model sharding of the GA population
    /// ([`dts_ga::IslandEngine`]). The default (`islands: 1`) is exactly
    /// the paper's monolithic GA; with more islands the same population
    /// budget is partitioned into concurrently evolving shards with
    /// deterministic elite migration.
    pub islands: IslandConfig,
    /// Seed for the scheduler's private RNG stream.
    pub seed: u64,
}

impl Default for PnConfig {
    fn default() -> Self {
        Self {
            ga: GaConfig::default(),
            rebalances_per_generation: 1,
            rebalance_probes: 5,
            init_random_fraction: (0.1, 0.9),
            initial_batch: 200,
            batch_scale: 40.0,
            max_batch: 1000,
            batch_nu: 0.5,
            min_generations: 10,
            time_model: GaTimeModel::default(),
            use_comm_estimates: true,
            seed_strategy: SeedStrategy::Fresh,
            islands: IslandConfig::default(),
            seed: 0x9A6E_2005,
        }
    }
}

impl PnConfig {
    /// Runs fitness evaluation on `workers` threads (1 = serial, 0 = all
    /// available cores). Purely a wall-clock knob: results are
    /// bit-identical at any worker count (`tests/determinism.rs`).
    pub fn with_eval_workers(mut self, workers: usize) -> Self {
        self.ga.evaluator = Evaluator::threads(workers);
        self
    }

    /// Warm-starts every `plan` invocation from the previous batch's best
    /// `elites` schedules (see [`SeedStrategy::CarryOver`]):
    ///
    /// ```
    /// use dts_core::{PnConfig, config::SeedStrategy};
    ///
    /// let cfg = PnConfig::default().with_warm_start(5);
    /// assert_eq!(cfg.seed_strategy, SeedStrategy::CarryOver { elites: 5 });
    /// assert!(cfg.validate().is_ok());
    /// ```
    pub fn with_warm_start(mut self, elites: usize) -> Self {
        self.seed_strategy = SeedStrategy::CarryOver { elites };
        self
    }

    /// Shards the GA population across islands with deterministic elite
    /// migration (see [`dts_ga::IslandEngine`]):
    ///
    /// ```
    /// use dts_core::PnConfig;
    /// use dts_ga::{IslandConfig, Topology};
    ///
    /// let cfg = PnConfig::default().with_islands(IslandConfig {
    ///     islands: 4,
    ///     migration_interval: 5,
    ///     migrants: 1,
    ///     topology: Topology::Ring,
    /// });
    /// assert_eq!(cfg.islands.islands, 4);
    /// assert!(cfg.validate().is_ok());
    /// ```
    pub fn with_islands(mut self, islands: IslandConfig) -> Self {
        self.islands = islands;
        self
    }

    /// Validates cross-field invariants. Called by the scheduler
    /// constructor; exposed for configuration loaders.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_batch == 0 {
            return Err("initial_batch must be ≥ 1".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be ≥ 1".into());
        }
        let (lo, hi) = self.init_random_fraction;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(format!("invalid init_random_fraction ({lo}, {hi})"));
        }
        if !(0.0..=1.0).contains(&self.batch_nu) {
            return Err(format!("batch_nu {} not in [0,1]", self.batch_nu));
        }
        if self.batch_scale <= 0.0 {
            return Err("batch_scale must be positive".into());
        }
        if self.seed_strategy == (SeedStrategy::CarryOver { elites: 0 }) {
            return Err("carry-over elites must be ≥ 1".into());
        }
        self.islands
            .validate(self.ga.population_size, self.ga.elitism)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PnConfig::default();
        assert_eq!(c.ga.population_size, 20, "micro-GA");
        assert_eq!(c.ga.max_generations, 1000);
        assert_eq!(c.rebalances_per_generation, 1);
        assert_eq!(c.rebalance_probes, 5);
        assert_eq!(c.initial_batch, 200);
        assert!(c.use_comm_estimates);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fraction() {
        let mut c = PnConfig {
            init_random_fraction: (0.9, 0.1),
            ..PnConfig::default()
        };
        assert!(c.validate().is_err());
        c.init_random_fraction = (0.0, 1.5);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_batch() {
        let c = PnConfig {
            initial_batch: 0,
            ..PnConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_nu() {
        let c = PnConfig {
            batch_nu: 2.0,
            ..PnConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_elites() {
        let c = PnConfig::default().with_warm_start(0);
        assert!(c.validate().is_err());
        assert!(PnConfig::default().with_warm_start(5).validate().is_ok());
    }

    #[test]
    fn validation_catches_degenerate_islands() {
        // migrants >= population/islands must be a diagnosable rejection.
        let mut c = PnConfig::default().with_islands(IslandConfig {
            islands: 4,
            migrants: 5,
            ..IslandConfig::default()
        });
        assert!(c.validate().is_err());
        c.islands.migrants = 4;
        assert!(c.validate().is_ok(), "pop 20 / 4 islands leaves room for 4");
        // More islands than the population can shard.
        c.islands = IslandConfig {
            islands: 16,
            migrants: 1,
            ..IslandConfig::default()
        };
        assert!(c.validate().is_err());
        // The default single island stays valid whatever the other knobs.
        assert!(PnConfig::default().validate().is_ok());
    }

    #[test]
    fn seed_strategy_default_is_fresh() {
        assert_eq!(SeedStrategy::default(), SeedStrategy::Fresh);
        assert!(!SeedStrategy::Fresh.is_carry_over());
        assert!(SeedStrategy::CarryOver { elites: 3 }.is_carry_over());
    }
}
