//! The **PN scheduler** — the primary contribution of Page & Naughton,
//! *Dynamic Task Scheduling using Genetic Algorithms for Heterogeneous
//! Distributed Computing* (IPPS 2005).
//!
//! PN is a dynamic, batch-mode scheduler that maps heterogeneous,
//! independent tasks onto heterogeneous, non-dedicated processors while
//! minimising makespan. Its distinguishing features over the
//! state-of-the-art GA scheduler it extends (Zomaya & Teh's ZO):
//!
//! 1. **Communication-aware fitness** (§3.2): per-link communication costs,
//!    estimated from history with the §3.6 smoothing function, enter the
//!    relative-error fitness — so schedules route work away from expensive
//!    links *before* the costs are incurred.
//! 2. **Rebalancing heuristic** (§3.5): a cheap local search applied to
//!    every individual in every generation.
//! 3. **Dynamic batch sizing** (§3.7): the batch grows or shrinks with the
//!    smoothed estimate of how long the cluster can keep itself busy.
//! 4. **List-scheduled initial population** (§3.3): part random, part
//!    earliest-finish — "a well balanced randomised initial population".
//!
//! # Crate layout
//!
//! * [`fitness`] — ψ, relative error `E`, fitness `F = 1/E`, and makespan
//!   over a batch ([`fitness::BatchProblem`] implements
//!   [`dts_ga::Problem`]).
//! * [`init`] — the list-scheduling initial-population generator.
//! * [`rebalance`] — the §3.5 swap heuristic.
//! * [`batching`] — the §3.7 dynamic batch-size rule.
//! * [`time_model`] — modelled GA compute time charged to the dedicated
//!   scheduler host.
//! * [`scheduler`] — [`scheduler::PnScheduler`], the
//!   [`dts_model::Scheduler`] implementation driven by the simulator.
//! * [`batch_run`] — a standalone one-batch GA run (used directly by the
//!   Fig. 3 / Fig. 4 experiments and the benches).
//! * [`plan`] — the unified plan-call entry point: one request struct,
//!   an explicit latency budget (generations, or wall-clock for the
//!   online server), warm seeds.
//!
//! # Quickstart
//!
//! ```
//! use dts_core::{PnConfig, batch_run::schedule_batch, fitness::ProcessorState};
//! use dts_model::{Task, TaskId, SimTime};
//!
//! // Four tasks for two processors, one fast and one slow.
//! let tasks: Vec<Task> = [800.0, 400.0, 200.0, 100.0]
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &m)| Task::new(TaskId(i as u32), m, SimTime::ZERO))
//!     .collect();
//! let procs = vec![
//!     ProcessorState { rate: 200.0, existing_load_mflops: 0.0, comm_cost: 0.1 },
//!     ProcessorState { rate: 50.0, existing_load_mflops: 0.0, comm_cost: 0.1 },
//! ];
//! let outcome = schedule_batch(&tasks, &procs, &PnConfig::default(), 0xC0FFEE);
//! assert_eq!(outcome.queues.iter().map(Vec::len).sum::<usize>(), 4);
//! // The fast processor should receive the bulk of the work.
//! assert!(outcome.queues[0].len() >= outcome.queues[1].len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch_run;
pub mod batching;
pub mod config;
pub mod fitness;
pub mod init;
pub mod plan;
pub mod rebalance;
pub mod scheduler;
pub mod time_model;

pub use batch_run::{
    schedule_batch, schedule_batch_capped, schedule_batch_warm, schedule_batch_with_ops,
    BatchOutcome,
};
pub use config::{PnConfig, SeedStrategy};
pub use fitness::{slot_precedence, BatchProblem, ProcessorState};
pub use init::{remap_elite, remap_islands};
pub use plan::{plan_batch, PlanBudget, PlanRequest};
pub use scheduler::PnScheduler;
pub use time_model::GaTimeModel;
