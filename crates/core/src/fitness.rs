//! The fitness function of §3.2.
//!
//! Previously assigned but unprocessed load is folded in through
//! `δⱼ = Lⱼ / Pⱼ`. The theoretical optimal processing time is
//!
//! ```text
//! ψ = ( Σᵢ tᵢ / Σⱼ Pⱼ ) + Σⱼ δⱼ
//! ```
//!
//! and the relative error of individual *i* is
//!
//! ```text
//! Eᵢ = sqrt( Σⱼ | ψ − ( δⱼ + Σ_{y→j} ( t_y / Pⱼ + Γc(y,j) ) ) |² )
//! ```
//!
//! where `Γc(y,j)` is the smoothed communication-cost estimate for
//! scheduling task *y* on processor *j*. The fitness is `Fᵢ = 1/Eᵢ`,
//! clamped into `(0, 1]` (the paper states `Fᵢ = [0, 1]`); a larger value
//! indicates a fitter schedule.

use dts_ga::{Chromosome, Problem};
use dts_model::Task;

use crate::config::PnConfig;
use crate::rebalance::rebalance_once;
use dts_distributions::Prng;

/// What the fitness function knows about one processor at planning time.
///
/// All three fields are *estimates* from the scheduler's point of view:
/// `rate` is the smoothed execution-rate estimate (initialised from the
/// Linpack rating), `existing_load_mflops` is `Lⱼ` — work already assigned
/// to the processor but not yet completed — and `comm_cost` is the smoothed
/// per-message cost `Γc` for this link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorState {
    /// Estimated execution rate `Pⱼ` in Mflop/s (> 0).
    pub rate: f64,
    /// Previously assigned, unprocessed load `Lⱼ` in MFLOPs.
    pub existing_load_mflops: f64,
    /// Estimated one-way communication cost per message, in seconds.
    pub comm_cost: f64,
}

impl ProcessorState {
    /// `δⱼ = Lⱼ / Pⱼ`: seconds until the existing load drains.
    #[inline]
    pub fn delta(&self) -> f64 {
        if self.rate > 0.0 {
            self.existing_load_mflops / self.rate
        } else {
            f64::INFINITY
        }
    }
}

/// The §3.2 optimisation problem for one batch: implements
/// [`dts_ga::Problem`] so the generic engine can evolve it, and carries the
/// §3.5 rebalancing heuristic as its `improve` hook.
pub struct BatchProblem<'a> {
    /// The batch being scheduled; chromosome slot `k` refers to
    /// `batch[k]`.
    batch: &'a [Task],
    /// Per-processor estimates.
    procs: &'a [ProcessorState],
    /// ψ: the theoretical optimal processing time for this batch.
    psi: f64,
    /// Whether Γc enters the fitness (PN: yes; the `no-comm` ablation: no).
    use_comm: bool,
    /// Rebalance attempts per improve() call (R in Fig. 3/4; 0 disables).
    rebalances: u32,
    /// Probes per rebalance attempt (paper: 5).
    rebalance_probes: u32,
}

/// Stack buffer size for per-processor completion times: clusters up to
/// this many processors evaluate without heap allocation. The paper's
/// largest experiments use 100 processors.
const STACK_PROCS: usize = 128;

impl<'a> BatchProblem<'a> {
    /// Builds the problem for a batch and processor set.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty or any rate is non-positive.
    pub fn new(batch: &'a [Task], procs: &'a [ProcessorState], config: &PnConfig) -> Self {
        assert!(!procs.is_empty(), "no processors to schedule onto");
        assert!(
            procs.iter().all(|p| p.rate > 0.0 && p.rate.is_finite()),
            "processor rates must be positive"
        );
        let total_mflops: f64 = batch.iter().map(|t| t.mflops).sum();
        let total_rate: f64 = procs.iter().map(|p| p.rate).sum();
        let sum_delta: f64 = procs.iter().map(ProcessorState::delta).sum();
        let psi = total_mflops / total_rate + sum_delta;
        Self {
            batch,
            procs,
            psi,
            use_comm: config.use_comm_estimates,
            rebalances: config.rebalances_per_generation,
            rebalance_probes: config.rebalance_probes,
        }
    }

    /// ψ — the theoretical optimal processing time (§3.2).
    pub fn psi(&self) -> f64 {
        self.psi
    }

    /// The batch under optimisation.
    pub fn batch(&self) -> &[Task] {
        self.batch
    }

    /// The processor estimates.
    pub fn procs(&self) -> &[ProcessorState] {
        self.procs
    }

    /// Fills `out` with per-processor completion times
    /// `Cⱼ = δⱼ + Σ_{y→j} (t_y/Pⱼ + Γc)` for the given schedule.
    pub fn completion_times(&self, c: &Chromosome, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.procs.len(), 0.0);
        self.fill_completions(c, out);
    }

    /// One pass over the chromosome: `out[j] = Cⱼ`. This is the hot path;
    /// it allocates nothing and draws no randomness, which is what lets
    /// the [`dts_ga::Evaluator`] thread pool run it concurrently.
    fn fill_completions(&self, c: &Chromosome, out: &mut [f64]) {
        for (slot, p) in out.iter_mut().zip(self.procs) {
            *slot = p.delta();
        }
        for (proc, slot) in c.assignments() {
            let p = &self.procs[proc];
            let t = &self.batch[slot as usize];
            let mut cost = t.mflops / p.rate;
            if self.use_comm {
                cost += p.comm_cost;
            }
            out[proc] += cost;
        }
    }

    /// Computes the completion times into a stack buffer (clusters of up
    /// to [`STACK_PROCS`] processors never touch the heap) and hands them
    /// to `f`.
    fn with_completions<R>(&self, c: &Chromosome, f: impl FnOnce(&[f64]) -> R) -> R {
        let m = self.procs.len();
        if m <= STACK_PROCS {
            let mut buf = [0.0f64; STACK_PROCS];
            self.fill_completions(c, &mut buf[..m]);
            f(&buf[..m])
        } else {
            let mut buf = vec![0.0f64; m];
            self.fill_completions(c, &mut buf);
            f(&buf)
        }
    }

    /// Fitness from a relative error: `F = 1/E` clamped into `(0, 1]`.
    #[inline]
    fn fitness_of_error(e: f64) -> f64 {
        if e <= 1.0 {
            1.0
        } else {
            1.0 / e
        }
    }

    /// The relative error `E` of a schedule (§3.2). Zero means every
    /// processor finishes exactly at ψ.
    pub fn relative_error(&self, c: &Chromosome) -> f64 {
        self.with_completions(c, |completions| {
            let sum_sq: f64 = completions
                .iter()
                .map(|&cj| {
                    let d = self.psi - cj;
                    d * d
                })
                .sum();
            sum_sq.sqrt()
        })
    }
}

impl Problem for BatchProblem<'_> {
    /// `F = 1/E`, clamped into `(0, 1]`; `E = 0` maps to the perfect score 1.
    fn fitness(&self, c: &Chromosome) -> f64 {
        Self::fitness_of_error(self.relative_error(c))
    }

    /// Estimated makespan: the largest per-processor completion time.
    fn makespan(&self, c: &Chromosome) -> f64 {
        self.with_completions(c, |completions| {
            completions.iter().copied().fold(0.0, f64::max)
        })
    }

    /// Fast path: fitness and makespan both derive from the per-processor
    /// completion times, so one fill serves both — separate
    /// [`Problem::fitness`] + [`Problem::makespan`] calls would walk the
    /// chromosome twice. Bit-identical to the two-call form because the
    /// completions are computed by the same pass either way.
    fn evaluate(&self, c: &Chromosome) -> (f64, f64) {
        self.with_completions(c, |completions| {
            let mut sum_sq = 0.0f64;
            let mut max = 0.0f64;
            for &cj in completions {
                let d = self.psi - cj;
                sum_sq += d * d;
                max = max.max(cj);
            }
            (Self::fitness_of_error(sum_sq.sqrt()), max)
        })
    }

    /// The §3.5 rebalancing heuristic, applied `rebalances` times.
    fn improve(&self, c: &mut Chromosome, current_fitness: f64, rng: &mut Prng) -> Option<f64> {
        if self.rebalances == 0 {
            return None;
        }
        let mut fitness = current_fitness;
        let mut improved = false;
        for _ in 0..self.rebalances {
            if let Some(f) = rebalance_once(self, c, fitness, self.rebalance_probes, rng) {
                fitness = f;
                improved = true;
            }
        }
        improved.then_some(fitness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::{SimTime, TaskId};

    fn task(id: u32, mflops: f64) -> Task {
        Task::new(TaskId(id), mflops, SimTime::ZERO)
    }

    fn proc(rate: f64, load: f64, comm: f64) -> ProcessorState {
        ProcessorState {
            rate,
            existing_load_mflops: load,
            comm_cost: comm,
        }
    }

    fn config() -> PnConfig {
        PnConfig::default()
    }

    #[test]
    fn psi_matches_hand_computation() {
        // Two processors at 100 and 300 Mflop/s with loads 100 and 0.
        // ψ = (600 / 400) + (100/100 + 0) = 1.5 + 1.0 = 2.5
        let batch = [task(0, 200.0), task(1, 400.0)];
        let procs = [proc(100.0, 100.0, 0.0), proc(300.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        assert!((p.psi() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn completion_times_include_delta_and_comm() {
        let batch = [task(0, 200.0), task(1, 400.0)];
        let procs = [proc(100.0, 100.0, 0.5), proc(200.0, 0.0, 0.25)];
        let p = BatchProblem::new(&batch, &procs, &config());
        // All tasks on processor 0: C0 = 1 + (200+400)/100 + 2×0.5 = 8, C1 = 0.
        let c = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        let mut out = Vec::new();
        p.completion_times(&c, &mut out);
        assert!((out[0] - 8.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn comm_can_be_disabled() {
        let batch = [task(0, 200.0)];
        let procs = [proc(100.0, 0.0, 5.0)];
        let mut cfg = config();
        cfg.use_comm_estimates = false;
        let p = BatchProblem::new(&batch, &procs, &cfg);
        let c = Chromosome::from_queues(&[vec![0]]);
        let mut out = Vec::new();
        p.completion_times(&c, &mut out);
        assert!((out[0] - 2.0).abs() < 1e-12, "no comm term expected");
    }

    #[test]
    fn perfectly_balanced_schedule_has_zero_error() {
        // Two identical processors, two identical tasks, no comm, no load.
        let batch = [task(0, 100.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let balanced = Chromosome::from_queues(&[vec![0], vec![1]]);
        assert!(p.relative_error(&balanced) < 1e-12);
        assert_eq!(p.fitness(&balanced), 1.0);
    }

    #[test]
    fn skewed_schedule_scores_worse() {
        let batch = [task(0, 100.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let balanced = Chromosome::from_queues(&[vec![0], vec![1]]);
        let skewed = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        assert!(p.fitness(&balanced) > p.fitness(&skewed));
        assert!(p.makespan(&skewed) > p.makespan(&balanced));
    }

    #[test]
    fn fitness_is_clamped_to_unit_interval() {
        let batch: Vec<Task> = (0..20).map(|i| task(i, 1000.0)).collect();
        let procs = [proc(10.0, 0.0, 0.0), proc(1000.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        // Terrible schedule: everything on the slow machine.
        let all_slow = Chromosome::from_queues(&[(0..20).collect(), vec![]]);
        let f = p.fitness(&all_slow);
        assert!(f > 0.0 && f <= 1.0, "fitness {f} out of (0,1]");
    }

    #[test]
    fn makespan_prefers_fast_processor() {
        let batch = [task(0, 1000.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(500.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let on_slow = Chromosome::from_queues(&[vec![0], vec![]]);
        let on_fast = Chromosome::from_queues(&[vec![], vec![0]]);
        assert!((p.makespan(&on_slow) - 10.0).abs() < 1e-12);
        assert!((p.makespan(&on_fast) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_costs_steer_assignment_value() {
        // Equal rates, but processor 0's link is expensive. A schedule
        // using the cheap link must be fitter.
        let batch = [task(0, 100.0)];
        let procs = [proc(100.0, 0.0, 10.0), proc(100.0, 0.0, 0.1)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let expensive = Chromosome::from_queues(&[vec![0], vec![]]);
        let cheap = Chromosome::from_queues(&[vec![], vec![0]]);
        assert!(p.fitness(&cheap) > p.fitness(&expensive));
    }

    #[test]
    fn combined_evaluate_matches_separate_calls() {
        let batch: Vec<Task> = (0..30).map(|i| task(i, 50.0 + 37.0 * i as f64)).collect();
        let procs = [
            proc(100.0, 250.0, 0.5),
            proc(200.0, 0.0, 0.25),
            proc(55.0, 10.0, 1.5),
        ];
        let p = BatchProblem::new(&batch, &procs, &config());
        let c = Chromosome::from_queues(&[
            (0..10).collect::<Vec<_>>(),
            (10..25).collect(),
            (25..30).collect(),
        ]);
        let (f, ms) = p.evaluate(&c);
        assert_eq!(f.to_bits(), p.fitness(&c).to_bits());
        assert_eq!(ms.to_bits(), p.makespan(&c).to_bits());
    }

    #[test]
    fn large_clusters_spill_to_the_heap_identically() {
        // One processor past the stack-buffer bound: same answers.
        let n = super::STACK_PROCS + 1;
        let batch: Vec<Task> = (0..n as u32).map(|i| task(i, 100.0)).collect();
        let procs: Vec<ProcessorState> = (0..n).map(|_| proc(100.0, 0.0, 0.0)).collect();
        let p = BatchProblem::new(&batch, &procs, &config());
        let queues: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
        let c = Chromosome::from_queues(&queues);
        assert!(p.relative_error(&c) < 1e-9, "perfectly balanced");
        let (f, ms) = p.evaluate(&c);
        assert_eq!(f, 1.0);
        assert!((ms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_problem_is_sync() {
        // The parallel evaluator shares `&BatchProblem` across worker
        // threads; losing `Sync` (e.g. by reintroducing interior
        // mutability) must fail to compile here first.
        fn assert_sync<T: Sync>() {}
        assert_sync::<BatchProblem<'static>>();
    }

    #[test]
    #[should_panic]
    fn empty_processors_rejected() {
        let batch = [task(0, 1.0)];
        let procs: [ProcessorState; 0] = [];
        let _ = BatchProblem::new(&batch, &procs, &config());
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let batch = [task(0, 1.0)];
        let procs = [proc(0.0, 0.0, 0.0)];
        let _ = BatchProblem::new(&batch, &procs, &config());
    }
}
