//! The fitness function of §3.2.
//!
//! Previously assigned but unprocessed load is folded in through
//! `δⱼ = Lⱼ / Pⱼ`. The theoretical optimal processing time is
//!
//! ```text
//! ψ = ( Σᵢ tᵢ / Σⱼ Pⱼ ) + Σⱼ δⱼ
//! ```
//!
//! and the relative error of individual *i* is
//!
//! ```text
//! Eᵢ = sqrt( Σⱼ | ψ − ( δⱼ + Σ_{y→j} ( t_y / Pⱼ + Γc(y,j) ) ) |² )
//! ```
//!
//! where `Γc(y,j)` is the smoothed communication-cost estimate for
//! scheduling task *y* on processor *j*. A larger fitness indicates a
//! fitter schedule.
//!
//! **Deviation from the paper:** the paper computes `Fᵢ = 1/Eᵢ` clamped
//! into `(0, 1]`, which maps *every* schedule with `E ≤ 1` to exactly 1.0
//! — on small batches most near-optimal schedules tie and selection /
//! elitism pressure vanishes. This implementation uses `Fᵢ = 1/(1 + Eᵢ)`:
//! the same range `(0, 1]`, the same perfect score `F(0) = 1`, the same
//! ordering for `E > 1`, but strictly monotone everywhere so an `E = 0.2`
//! schedule outranks an `E = 0.9` one. The engine additionally tie-breaks
//! elites by makespan.
//!
//! # Incremental evaluation
//!
//! [`BatchProblem`] keeps flat per-task and per-processor arrays (task
//! sizes, rates, effective comm costs, δⱼ) so the hot path walks cache-
//! friendly `f64` slices instead of chasing structs, and implements the
//! engine's incremental hooks: [`dts_ga::Problem::evaluate_into`] exports
//! the per-processor completion times, and
//! [`dts_ga::Problem::evaluate_swap_delta`] re-sums only the (at most two)
//! queues touched by a task–task transposition. Affected queues are always
//! re-accumulated **in gene order** — float addition is not associative,
//! so adding/subtracting single terms would drift off the full walk; the
//! re-sum keeps every path bit-identical to [`fill_completions`] (the
//! bitwise oracle, exercised by the proptests).
//!
//! # Precedence-constrained batches
//!
//! [`BatchProblem::with_precedence`] attaches a batch-local DAG
//! ([`dts_ga::SlotPrecedence`], typically built with [`slot_precedence`]):
//! completion times then charge each task the later of its queue
//! availability and its predecessors' finish times, the engine repairs
//! every chromosome into topological order
//! ([`dts_ga::repair_topological`]), and the queue-local incremental
//! paths (swap delta, §3.5 rebalance) decline because a task's cost now
//! couples queues. An unconstrained table is dropped entirely, so
//! edge-free workloads execute exactly the code described above — the
//! no-edges bit-identity contract.
//!
//! [`fill_completions`]: BatchProblem::completion_times

use dts_ga::{repair_topological, Chromosome, Gene, Problem, SlotPrecedence};
use dts_model::{Task, TaskGraph};

use crate::config::PnConfig;
use crate::rebalance::rebalance_once;
use dts_distributions::Prng;

/// What the fitness function knows about one processor at planning time.
///
/// All three fields are *estimates* from the scheduler's point of view:
/// `rate` is the smoothed execution-rate estimate (initialised from the
/// Linpack rating), `existing_load_mflops` is `Lⱼ` — work already assigned
/// to the processor but not yet completed — and `comm_cost` is the smoothed
/// per-message cost `Γc` for this link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorState {
    /// Estimated execution rate `Pⱼ` in Mflop/s (> 0).
    pub rate: f64,
    /// Previously assigned, unprocessed load `Lⱼ` in MFLOPs.
    pub existing_load_mflops: f64,
    /// Estimated one-way communication cost per message, in seconds.
    pub comm_cost: f64,
}

impl ProcessorState {
    /// `δⱼ = Lⱼ / Pⱼ`: seconds until the existing load drains.
    #[inline]
    pub fn delta(&self) -> f64 {
        if self.rate > 0.0 {
            self.existing_load_mflops / self.rate
        } else {
            f64::INFINITY
        }
    }
}

/// The §3.2 optimisation problem for one batch: implements
/// [`dts_ga::Problem`] so the generic engine can evolve it, and carries the
/// §3.5 rebalancing heuristic as its `improve` hook.
pub struct BatchProblem<'a> {
    /// The batch being scheduled; chromosome slot `k` refers to
    /// `batch[k]`.
    batch: &'a [Task],
    /// Per-processor estimates.
    procs: &'a [ProcessorState],
    /// ψ: the theoretical optimal processing time for this batch.
    psi: f64,
    /// Whether Γc enters the fitness (PN: yes; the `no-comm` ablation: no).
    use_comm: bool,
    /// Rebalance attempts per improve() call (R in Fig. 3/4; 0 disables).
    rebalances: u32,
    /// Probes per rebalance attempt (paper: 5).
    rebalance_probes: u32,
    /// Task sizes by chromosome slot (SoA copy of `batch[k].mflops`).
    mflops: Vec<f64>,
    /// Per-processor rates `Pⱼ` (SoA copy of `procs[j].rate`).
    rate: Vec<f64>,
    /// Per-processor *effective* comm cost: `Γcⱼ` when communication
    /// estimates are in use, `0.0` otherwise. Pre-zeroing keeps the inner
    /// loop branch-free; adding `+0.0` to a non-negative cost is
    /// bit-identical to skipping the add.
    comm: Vec<f64>,
    /// Per-processor `δⱼ`, computed once at construction.
    delta: Vec<f64>,
    /// Batch-local precedence constraints, when the batch is a DAG slice.
    /// `None` — the paper's independent-task model — routes every
    /// evaluation through the original code path, so precedence support
    /// is structurally invisible to edge-free workloads.
    precedence: Option<&'a SlotPrecedence>,
}

/// Stack buffer size for per-processor completion times: clusters up to
/// this many processors evaluate without heap allocation. The paper's
/// largest experiments use 100 processors.
const STACK_PROCS: usize = 128;

impl<'a> BatchProblem<'a> {
    /// Builds the problem for a batch and processor set.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty, any rate is non-positive or non-finite,
    /// any existing load or comm cost is negative/NaN/infinite, or any
    /// task size is non-positive or non-finite. [`Task::new`] already
    /// rejects bad sizes, but `Task` fields are public, so this is the
    /// diagnosable last line of defence — a NaN that slipped through here
    /// used to surface only as an opaque `partial_cmp` panic deep inside
    /// the §3.5 rebalance loop, mid-GA.
    pub fn new(batch: &'a [Task], procs: &'a [ProcessorState], config: &PnConfig) -> Self {
        assert!(!procs.is_empty(), "no processors to schedule onto");
        for (j, p) in procs.iter().enumerate() {
            assert!(
                p.rate > 0.0 && p.rate.is_finite(),
                "processor {j} has invalid rate estimate {}",
                p.rate
            );
            assert!(
                p.existing_load_mflops.is_finite() && p.existing_load_mflops >= 0.0,
                "processor {j} has invalid existing load {} MFLOPs",
                p.existing_load_mflops
            );
            assert!(
                p.comm_cost.is_finite() && p.comm_cost >= 0.0,
                "processor {j} has invalid comm cost {}",
                p.comm_cost
            );
        }
        for t in batch {
            assert!(
                t.mflops.is_finite() && t.mflops > 0.0,
                "task {} has invalid size {} MFLOPs",
                t.id,
                t.mflops
            );
        }
        let total_mflops: f64 = batch.iter().map(|t| t.mflops).sum();
        let total_rate: f64 = procs.iter().map(|p| p.rate).sum();
        let sum_delta: f64 = procs.iter().map(ProcessorState::delta).sum();
        let psi = total_mflops / total_rate + sum_delta;
        let mflops: Vec<f64> = batch.iter().map(|t| t.mflops).collect();
        let rate: Vec<f64> = procs.iter().map(|p| p.rate).collect();
        let comm: Vec<f64> = if config.use_comm_estimates {
            procs.iter().map(|p| p.comm_cost).collect()
        } else {
            vec![0.0; procs.len()]
        };
        let delta: Vec<f64> = procs.iter().map(ProcessorState::delta).collect();
        Self {
            batch,
            procs,
            psi,
            use_comm: config.use_comm_estimates,
            rebalances: config.rebalances_per_generation,
            rebalance_probes: config.rebalance_probes,
            mflops,
            rate,
            comm,
            delta,
            precedence: None,
        }
    }

    /// Attaches batch-local precedence constraints: completion times then
    /// charge each task the later of its queue position and its
    /// predecessors' finish times (the §3.2 sums become exact schedule
    /// lower bounds), and the problem implements [`Problem::repair`] with
    /// the topological gene repair so the engine only ever evaluates
    /// feasible orders.
    ///
    /// An unconstrained table is dropped (`None`): an edge-free DAG must
    /// take exactly the independent-task code path, not a behaviourally
    /// equivalent one — that structural delegation is what the
    /// no-edges bit-identity tests pin down. In DAG mode the incremental
    /// fast paths that assume queue-local costs (swap delta-evaluation and
    /// the §3.5 rebalance) decline, so every evaluation is the full
    /// precedence-aware walk.
    ///
    /// # Panics
    ///
    /// Panics if the table's slot count differs from the batch length.
    pub fn with_precedence(mut self, precedence: &'a SlotPrecedence) -> Self {
        assert_eq!(
            precedence.n_slots(),
            self.batch.len(),
            "precedence table must span exactly the batch"
        );
        self.precedence = (!precedence.is_unconstrained()).then_some(precedence);
        self
    }

    /// The attached precedence table, if the batch is constrained.
    pub fn precedence(&self) -> Option<&SlotPrecedence> {
        self.precedence
    }

    /// ψ — the theoretical optimal processing time (§3.2).
    pub fn psi(&self) -> f64 {
        self.psi
    }

    /// The batch under optimisation.
    pub fn batch(&self) -> &[Task] {
        self.batch
    }

    /// The processor estimates.
    pub fn procs(&self) -> &[ProcessorState] {
        self.procs
    }

    /// Fills `out` with per-processor completion times
    /// `Cⱼ = δⱼ + Σ_{y→j} (t_y/Pⱼ + Γc)` for the given schedule.
    pub fn completion_times(&self, c: &Chromosome, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.procs.len(), 0.0);
        self.fill_completions(c, out);
    }

    /// One pass over the chromosome: `out[j] = Cⱼ`. This is the hot path
    /// and the bitwise oracle every incremental path must match; it
    /// allocates nothing and draws no randomness, which is what lets the
    /// [`dts_ga::Evaluator`] thread pool run it concurrently. Each queue
    /// accumulates in a register (per-processor add order is identical to
    /// accumulating through `out`, so the results are bit-identical to
    /// the previous memory-accumulating form) over the flat SoA arrays.
    fn fill_completions(&self, c: &Chromosome, out: &mut [f64]) {
        match self.precedence {
            None => self.fill_completions_independent(c, out),
            Some(prec) => self.fill_completions_dag(c, out, prec),
        }
    }

    /// The independent-task walk — the original hot path, untouched, and
    /// the only code edge-free batches ever execute.
    fn fill_completions_independent(&self, c: &Chromosome, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rate.len());
        let mut q = 0usize;
        let mut acc = self.delta[0];
        for &g in c.genes() {
            match g {
                Gene::Task(t) => {
                    acc += self.mflops[t as usize] / self.rate[q] + self.comm[q];
                }
                Gene::Delim(_) => {
                    out[q] = acc;
                    q += 1;
                    acc = self.delta[q];
                }
            }
        }
        out[q] = acc;
    }

    /// The precedence-aware walk: each task starts at the later of its
    /// queue's current availability and its predecessors' finish times, so
    /// per-processor completion times — and therefore the makespan — are
    /// exact for the precedence-constrained schedule, not optimistic
    /// queue-sum lower bounds. The repaired gene string is globally
    /// topological (every predecessor appears earlier), which is what
    /// makes one left-to-right pass sufficient. Per-task finish times live
    /// in a per-call buffer, keeping the walk `Sync` for the parallel
    /// evaluator.
    fn fill_completions_dag(&self, c: &Chromosome, out: &mut [f64], prec: &SlotPrecedence) {
        debug_assert_eq!(out.len(), self.rate.len());
        let mut finish = vec![0.0f64; self.mflops.len()];
        let mut q = 0usize;
        let mut acc = self.delta[0];
        for &g in c.genes() {
            match g {
                Gene::Task(t) => {
                    let mut start = acc;
                    for &p in prec.preds_of(t) {
                        start = start.max(finish[p as usize]);
                    }
                    let fin = start + (self.mflops[t as usize] / self.rate[q] + self.comm[q]);
                    finish[t as usize] = fin;
                    acc = fin;
                }
                Gene::Delim(_) => {
                    out[q] = acc;
                    q += 1;
                    acc = self.delta[q];
                }
            }
        }
        out[q] = acc;
    }

    /// `Cⱼ` for the queue `q` whose task genes start at `start`:
    /// re-accumulates `δ_q + Σ (t/P_q + Γc_q)` in gene order until the
    /// next delimiter — the same add sequence `fill_completions` performs
    /// for that queue.
    fn queue_cost(&self, genes: &[Gene], q: usize, start: usize) -> f64 {
        let mut acc = self.delta[q];
        for &g in &genes[start..] {
            match g {
                Gene::Task(t) => {
                    acc += self.mflops[t as usize] / self.rate[q] + self.comm[q];
                }
                Gene::Delim(_) => break,
            }
        }
        acc
    }

    /// `Cⱼ` for queue `q` re-summed from its task-gene `positions` (gene
    /// order), with the task at `replace_pos` substituted by
    /// `replace_slot` — exactly the sum `fill_completions` would produce
    /// for that queue after the swap, without mutating the chromosome.
    /// Used by the §3.5 rebalance to cost candidate swaps.
    pub(crate) fn queue_cost_substituted(
        &self,
        c: &Chromosome,
        q: usize,
        positions: &[usize],
        replace_pos: usize,
        replace_slot: u32,
    ) -> f64 {
        let genes = c.genes();
        let mut acc = self.delta[q];
        for &pos in positions {
            let slot = if pos == replace_pos {
                replace_slot
            } else {
                match genes[pos] {
                    Gene::Task(s) => s,
                    Gene::Delim(_) => unreachable!("queue positions contain only tasks"),
                }
            };
            acc += self.mflops[slot as usize] / self.rate[q] + self.comm[q];
        }
        acc
    }

    /// Scores a completion-time vector as `(fitness, makespan)`. Every
    /// evaluation path — full walk, swap delta, rebalance substitution —
    /// funnels through the same j-ordered loop, which is what keeps their
    /// results bit-identical.
    pub(crate) fn score_completions(&self, completions: &[f64]) -> (f64, f64) {
        let mut sum_sq = 0.0f64;
        let mut max = 0.0f64;
        for &cj in completions {
            let d = self.psi - cj;
            sum_sq += d * d;
            max = max.max(cj);
        }
        (Self::fitness_of_error(sum_sq.sqrt()), max)
    }

    /// Fitness of the schedule whose completion times equal `completions`
    /// with entries `a.0` / `b.0` replaced by `a.1` / `b.1` — the
    /// j-ordered loop matches [`BatchProblem::score_completions`]
    /// bit-for-bit without materialising the substituted vector.
    pub(crate) fn fitness_with_substitution(
        &self,
        completions: &[f64],
        a: (usize, f64),
        b: (usize, f64),
    ) -> f64 {
        let mut sum_sq = 0.0f64;
        for (j, &cj) in completions.iter().enumerate() {
            let v = if j == a.0 {
                a.1
            } else if j == b.0 {
                b.1
            } else {
                cj
            };
            let d = self.psi - v;
            sum_sq += d * d;
        }
        Self::fitness_of_error(sum_sq.sqrt())
    }

    /// Computes the completion times into a stack buffer (clusters of up
    /// to [`STACK_PROCS`] processors never touch the heap) and hands them
    /// to `f`.
    fn with_completions<R>(&self, c: &Chromosome, f: impl FnOnce(&[f64]) -> R) -> R {
        let m = self.procs.len();
        if m <= STACK_PROCS {
            let mut buf = [0.0f64; STACK_PROCS];
            self.fill_completions(c, &mut buf[..m]);
            f(&buf[..m])
        } else {
            let mut buf = vec![0.0f64; m];
            self.fill_completions(c, &mut buf);
            f(&buf)
        }
    }

    /// Fitness from a relative error: `F = 1/(1 + E)` — range `(0, 1]`,
    /// `F(0) = 1` exactly, strictly monotone decreasing. See the module
    /// docs for why this deviates from the paper's clamped `1/E` (which
    /// tied every schedule with `E ≤ 1` at exactly 1.0, killing selection
    /// pressure near the optimum).
    #[inline]
    fn fitness_of_error(e: f64) -> f64 {
        1.0 / (1.0 + e)
    }

    /// The relative error `E` of a schedule (§3.2). Zero means every
    /// processor finishes exactly at ψ.
    pub fn relative_error(&self, c: &Chromosome) -> f64 {
        self.with_completions(c, |completions| {
            let sum_sq: f64 = completions
                .iter()
                .map(|&cj| {
                    let d = self.psi - cj;
                    d * d
                })
                .sum();
            sum_sq.sqrt()
        })
    }
}

impl Problem for BatchProblem<'_> {
    /// `F = 1/(1 + E)`; `E = 0` maps to the perfect score 1.
    fn fitness(&self, c: &Chromosome) -> f64 {
        Self::fitness_of_error(self.relative_error(c))
    }

    /// Estimated makespan: the largest per-processor completion time.
    fn makespan(&self, c: &Chromosome) -> f64 {
        self.with_completions(c, |completions| {
            completions.iter().copied().fold(0.0, f64::max)
        })
    }

    /// Fast path: fitness and makespan both derive from the per-processor
    /// completion times, so one fill serves both — separate
    /// [`Problem::fitness`] + [`Problem::makespan`] calls would walk the
    /// chromosome twice. Bit-identical to the two-call form because the
    /// completions are computed by the same pass either way.
    fn evaluate(&self, c: &Chromosome) -> (f64, f64) {
        self.with_completions(c, |completions| self.score_completions(completions))
    }

    /// The full walk, exporting the completion times for the engine's
    /// incremental machinery (delta-evaluation, memo, §3.5 rebalance).
    fn evaluate_into(&self, c: &Chromosome, completions: &mut Vec<f64>) -> (f64, f64) {
        self.completion_times(c, completions);
        self.score_completions(completions)
    }

    /// Task–task transpositions touch at most two queues; only those are
    /// re-summed (in gene order, off the SoA arrays) and the score is
    /// recomputed over the updated completions. Declines delimiter moves —
    /// those shift queue boundaries for every queue between the two
    /// positions, so the full walk is the honest cost.
    fn evaluate_swap_delta(
        &self,
        c: &Chromosome,
        i: usize,
        j: usize,
        completions: &mut [f64],
    ) -> Option<(f64, f64)> {
        // A precedence-constrained batch has cross-queue coupling: a
        // task's start depends on predecessor finishes in other queues, so
        // queue-local re-summing is unsound. Decline and let the engine
        // fall back to the full DAG walk.
        if self.precedence.is_some() {
            return None;
        }
        if completions.len() != self.rate.len() || i == j {
            return None;
        }
        let genes = c.genes();
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        if !matches!(genes[lo], Gene::Task(_)) || !matches!(genes[hi], Gene::Task(_)) {
            return None;
        }
        // Locate the queues holding `lo` and `hi`: one delimiter-counting
        // pass (no divisions) that never looks past `hi`. Queue index is
        // the number of delimiters crossed — delimiter *labels* carry no
        // positional meaning, so they cannot be used as a shortcut.
        let mut q = 0usize;
        let mut start = 0usize;
        let (mut q_lo, mut start_lo) = (0usize, 0usize);
        for (pos, g) in genes[..hi].iter().enumerate() {
            if pos == lo {
                q_lo = q;
                start_lo = start;
            }
            if matches!(g, Gene::Delim(_)) {
                q += 1;
                start = pos + 1;
            }
        }
        let (q_hi, start_hi) = (q, start);
        // Re-accumulate the affected queue(s) in gene order. A same-queue
        // swap still needs the re-sum: the two tasks exchanged positions,
        // so the queue's addition order — and therefore its rounded sum —
        // can change.
        completions[q_lo] = self.queue_cost(genes, q_lo, start_lo);
        if q_hi != q_lo {
            completions[q_hi] = self.queue_cost(genes, q_hi, start_hi);
        }
        Some(self.score_completions(completions))
    }

    /// Digest of everything evaluation depends on besides the chromosome:
    /// ψ, the comm flag, every task size, and every processor's
    /// rate/δ/comm estimate. Equal keys ⇒ identical evaluation context,
    /// which is the fitness memo's invalidation rule.
    fn epoch_key(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut x = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let mut h = mix(0x5049_5053_3230_3035, self.mflops.len() as u64);
        h = mix(h, self.rate.len() as u64);
        h = mix(h, self.psi.to_bits());
        h = mix(h, self.use_comm as u64);
        for &m in &self.mflops {
            h = mix(h, m.to_bits());
        }
        for j in 0..self.rate.len() {
            h = mix(h, self.rate[j].to_bits());
            h = mix(h, self.delta[j].to_bits());
            h = mix(h, self.comm[j].to_bits());
        }
        // Precedence constraints change what a chromosome evaluates to, so
        // they are part of the evaluation context. The unconstrained case
        // folds nothing — bit-identical to the pre-DAG key.
        if let Some(prec) = self.precedence {
            h = mix(h, prec.digest());
        }
        h
    }

    /// Topological gene repair ([`repair_topological`]) when the batch is
    /// precedence-constrained; the no-op identity otherwise, preserving
    /// the independent-task engine behaviour bit for bit.
    fn repair(&self, c: &mut Chromosome) -> bool {
        match self.precedence {
            Some(prec) => repair_topological(c, prec),
            None => false,
        }
    }

    /// The §3.5 rebalancing heuristic, applied `rebalances` times. The
    /// maintained completion times flow through every attempt, so neither
    /// the heavy-processor scan nor the final makespan re-walks the
    /// chromosome.
    fn improve(
        &self,
        c: &mut Chromosome,
        current_fitness: f64,
        completions: &mut Vec<f64>,
        rng: &mut Prng,
    ) -> Option<(f64, f64)> {
        // The §3.5 rebalance costs candidate moves with queue-local sums,
        // which ignore cross-queue precedence coupling; in DAG mode it is
        // disabled rather than allowed to report fitnesses the full walk
        // would contradict.
        if self.rebalances == 0 || self.precedence.is_some() {
            return None;
        }
        // Individuals evaluated through `evaluate_into` arrive with their
        // completions populated; recompute defensively otherwise.
        if completions.len() != self.procs.len() {
            self.completion_times(c, completions);
        }
        let mut fitness = current_fitness;
        let mut improved = false;
        for _ in 0..self.rebalances {
            if let Some(f) =
                rebalance_once(self, c, fitness, completions, self.rebalance_probes, rng)
            {
                fitness = f;
                improved = true;
            }
        }
        improved.then(|| {
            let makespan = completions.iter().copied().fold(0.0, f64::max);
            (fitness, makespan)
        })
    }
}

/// Restricts a workload-wide [`TaskGraph`] to one batch: slot `k` of the
/// resulting table corresponds to `batch[k]`, and a predecessor appears
/// only when it is itself in the batch — tasks outside the batch are
/// already complete (the simulator admits a task only after all of its
/// predecessors finish) or are handled by the caller, so they impose no
/// intra-batch ordering. A batch with no surviving edges yields an
/// unconstrained table, which [`BatchProblem::with_precedence`] treats as
/// "no constraints at all".
pub fn slot_precedence(batch: &[Task], graph: &TaskGraph) -> SlotPrecedence {
    // Task ids are dense (graph nodes are 0..n), so the id→slot index is
    // a plain vector — no hash table, no nondeterministic bucket order.
    const NO_SLOT: u32 = u32::MAX;
    let max_id = batch.iter().map(|t| t.id.0 as usize).max();
    let mut slot_of = vec![NO_SLOT; max_id.map_or(0, |m| m + 1)];
    for (k, t) in batch.iter().enumerate() {
        slot_of[t.id.0 as usize] = k as u32;
    }
    let preds = batch
        .iter()
        .map(|t| {
            graph
                .preds(t.id.0)
                .iter()
                .filter_map(|&p| slot_of.get(p as usize).copied().filter(|&s| s != NO_SLOT))
                .collect()
        })
        .collect();
    SlotPrecedence::new(preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::{SimTime, TaskId};

    fn task(id: u32, mflops: f64) -> Task {
        Task::new(TaskId(id), mflops, SimTime::ZERO)
    }

    fn proc(rate: f64, load: f64, comm: f64) -> ProcessorState {
        ProcessorState {
            rate,
            existing_load_mflops: load,
            comm_cost: comm,
        }
    }

    fn config() -> PnConfig {
        PnConfig::default()
    }

    #[test]
    fn psi_matches_hand_computation() {
        // Two processors at 100 and 300 Mflop/s with loads 100 and 0.
        // ψ = (600 / 400) + (100/100 + 0) = 1.5 + 1.0 = 2.5
        let batch = [task(0, 200.0), task(1, 400.0)];
        let procs = [proc(100.0, 100.0, 0.0), proc(300.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        assert!((p.psi() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn completion_times_include_delta_and_comm() {
        let batch = [task(0, 200.0), task(1, 400.0)];
        let procs = [proc(100.0, 100.0, 0.5), proc(200.0, 0.0, 0.25)];
        let p = BatchProblem::new(&batch, &procs, &config());
        // All tasks on processor 0: C0 = 1 + (200+400)/100 + 2×0.5 = 8, C1 = 0.
        let c = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        let mut out = Vec::new();
        p.completion_times(&c, &mut out);
        assert!((out[0] - 8.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn comm_can_be_disabled() {
        let batch = [task(0, 200.0)];
        let procs = [proc(100.0, 0.0, 5.0)];
        let mut cfg = config();
        cfg.use_comm_estimates = false;
        let p = BatchProblem::new(&batch, &procs, &cfg);
        let c = Chromosome::from_queues(&[vec![0]]);
        let mut out = Vec::new();
        p.completion_times(&c, &mut out);
        assert!((out[0] - 2.0).abs() < 1e-12, "no comm term expected");
    }

    #[test]
    fn perfectly_balanced_schedule_has_zero_error() {
        // Two identical processors, two identical tasks, no comm, no load.
        let batch = [task(0, 100.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let balanced = Chromosome::from_queues(&[vec![0], vec![1]]);
        assert!(p.relative_error(&balanced) < 1e-12);
        assert_eq!(p.fitness(&balanced), 1.0);
    }

    #[test]
    fn skewed_schedule_scores_worse() {
        let batch = [task(0, 100.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let balanced = Chromosome::from_queues(&[vec![0], vec![1]]);
        let skewed = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        assert!(p.fitness(&balanced) > p.fitness(&skewed));
        assert!(p.makespan(&skewed) > p.makespan(&balanced));
    }

    #[test]
    fn fitness_is_clamped_to_unit_interval() {
        let batch: Vec<Task> = (0..20).map(|i| task(i, 1000.0)).collect();
        let procs = [proc(10.0, 0.0, 0.0), proc(1000.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        // Terrible schedule: everything on the slow machine.
        let all_slow = Chromosome::from_queues(&[(0..20).collect(), vec![]]);
        let f = p.fitness(&all_slow);
        assert!(f > 0.0 && f <= 1.0, "fitness {f} out of (0,1]");
    }

    #[test]
    fn makespan_prefers_fast_processor() {
        let batch = [task(0, 1000.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(500.0, 0.0, 0.0)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let on_slow = Chromosome::from_queues(&[vec![0], vec![]]);
        let on_fast = Chromosome::from_queues(&[vec![], vec![0]]);
        assert!((p.makespan(&on_slow) - 10.0).abs() < 1e-12);
        assert!((p.makespan(&on_fast) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_costs_steer_assignment_value() {
        // Equal rates, but processor 0's link is expensive. A schedule
        // using the cheap link must be fitter.
        let batch = [task(0, 100.0)];
        let procs = [proc(100.0, 0.0, 10.0), proc(100.0, 0.0, 0.1)];
        let p = BatchProblem::new(&batch, &procs, &config());
        let expensive = Chromosome::from_queues(&[vec![0], vec![]]);
        let cheap = Chromosome::from_queues(&[vec![], vec![0]]);
        assert!(p.fitness(&cheap) > p.fitness(&expensive));
    }

    #[test]
    fn combined_evaluate_matches_separate_calls() {
        let batch: Vec<Task> = (0..30).map(|i| task(i, 50.0 + 37.0 * i as f64)).collect();
        let procs = [
            proc(100.0, 250.0, 0.5),
            proc(200.0, 0.0, 0.25),
            proc(55.0, 10.0, 1.5),
        ];
        let p = BatchProblem::new(&batch, &procs, &config());
        let c = Chromosome::from_queues(&[
            (0..10).collect::<Vec<_>>(),
            (10..25).collect(),
            (25..30).collect(),
        ]);
        let (f, ms) = p.evaluate(&c);
        assert_eq!(f.to_bits(), p.fitness(&c).to_bits());
        assert_eq!(ms.to_bits(), p.makespan(&c).to_bits());
    }

    #[test]
    fn large_clusters_spill_to_the_heap_identically() {
        // One processor past the stack-buffer bound: same answers.
        let n = super::STACK_PROCS + 1;
        let batch: Vec<Task> = (0..n as u32).map(|i| task(i, 100.0)).collect();
        let procs: Vec<ProcessorState> = (0..n).map(|_| proc(100.0, 0.0, 0.0)).collect();
        let p = BatchProblem::new(&batch, &procs, &config());
        let queues: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i]).collect();
        let c = Chromosome::from_queues(&queues);
        assert!(p.relative_error(&c) < 1e-9, "perfectly balanced");
        let (f, ms) = p.evaluate(&c);
        assert_eq!(f, 1.0);
        assert!((ms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_problem_is_sync() {
        // The parallel evaluator shares `&BatchProblem` across worker
        // threads; losing `Sync` (e.g. by reintroducing interior
        // mutability) must fail to compile here first.
        fn assert_sync<T: Sync>() {}
        assert_sync::<BatchProblem<'static>>();
    }

    #[test]
    fn near_optimal_schedules_no_longer_tie() {
        // Two identical processors, two tasks 10+d / 10−d on separate
        // queues: ψ = 10, E = d·√2. With the paper's clamped 1/E both the
        // d = 0.2/√2 and d = 0.9/√2 schedules scored exactly 1.0 and
        // selection could not tell them apart; 1/(1+E) ranks them.
        let score = |e: f64| {
            let d = e / 2.0f64.sqrt();
            let batch = [task(0, 10.0 + d), task(1, 10.0 - d)];
            let procs = [proc(1.0, 0.0, 0.0), proc(1.0, 0.0, 0.0)];
            let p = BatchProblem::new(&batch, &procs, &config());
            let c = Chromosome::from_queues(&[vec![0], vec![1]]);
            p.fitness(&c)
        };
        let (near, far) = (score(0.2), score(0.9));
        assert!(
            near < 1.0 && far < 1.0,
            "imperfect schedules must not hit 1.0"
        );
        assert!(
            near > far,
            "E=0.2 ({near}) must outrank E=0.9 ({far}) — the old clamp tied them"
        );
    }

    #[test]
    #[should_panic(expected = "invalid size")]
    fn nan_task_size_is_rejected_up_front() {
        // Task fields are public, so a NaN can bypass Task::new; the
        // problem constructor must turn that into a diagnosable panic
        // instead of a partial_cmp crash deep inside the rebalance loop.
        let batch = [Task {
            id: TaskId(0),
            mflops: f64::NAN,
            arrival: SimTime::ZERO,
        }];
        let procs = [proc(100.0, 0.0, 0.0)];
        let _ = BatchProblem::new(&batch, &procs, &config());
    }

    #[test]
    fn swap_delta_matches_full_evaluation_bitwise() {
        use dts_distributions::{Prng, Rng};
        let batch: Vec<Task> = (0..40).map(|i| task(i, 10.0 + 13.7 * i as f64)).collect();
        let procs = [
            proc(100.0, 250.0, 0.5),
            proc(200.0, 0.0, 0.25),
            proc(55.0, 10.0, 1.5),
            proc(150.0, 40.0, 0.0),
        ];
        let p = BatchProblem::new(&batch, &procs, &config());
        let mut c = Chromosome::from_queues(&[
            (0..10).collect::<Vec<_>>(),
            (10..25).collect(),
            (25..33).collect(),
            (33..40).collect(),
        ]);
        let mut completions = Vec::new();
        p.evaluate_into(&c, &mut completions);
        let mut rng = Prng::seed_from(0xD17A);
        let mut deltas_taken = 0u32;
        for _ in 0..500 {
            let len = c.genes().len();
            let (i, j) = (rng.below(len), rng.below(len));
            c.genes_swap(i, j);
            let fresh = {
                let mut fresh_comps = Vec::new();
                let (f, ms) = p.evaluate_into(&c, &mut fresh_comps);
                (f, ms, fresh_comps)
            };
            match p.evaluate_swap_delta(&c, i, j, &mut completions) {
                Some((f, ms)) => {
                    deltas_taken += 1;
                    assert_eq!(f.to_bits(), fresh.0.to_bits(), "fitness drifted");
                    assert_eq!(ms.to_bits(), fresh.1.to_bits(), "makespan drifted");
                    for (a, b) in completions.iter().zip(&fresh.2) {
                        assert_eq!(a.to_bits(), b.to_bits(), "completions drifted");
                    }
                }
                None => completions = fresh.2,
            }
        }
        assert!(
            deltas_taken > 100,
            "task–task swaps should dominate ({deltas_taken}/500 deltas)"
        );
    }

    #[test]
    fn unconstrained_precedence_is_structurally_dropped() {
        let batch = [task(0, 100.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let prec = SlotPrecedence::unconstrained(2);
        let p = BatchProblem::new(&batch, &procs, &config()).with_precedence(&prec);
        assert!(p.precedence().is_none(), "edge-free table must be dropped");
        // Identical epoch key to a problem never given a table: the memo
        // epoch is part of the no-edges bit-identity contract.
        let plain = BatchProblem::new(&batch, &procs, &config());
        assert_eq!(p.epoch_key(), plain.epoch_key());
    }

    #[test]
    fn dag_completion_times_charge_predecessor_finish() {
        // Slot 1 depends on slot 0, the two run on different processors:
        // C1 must wait for slot 0's finish instead of starting at δ.
        let batch = [task(0, 200.0), task(1, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let prec = SlotPrecedence::new(vec![vec![], vec![0]]);
        let p = BatchProblem::new(&batch, &procs, &config()).with_precedence(&prec);
        let c = Chromosome::from_queues(&[vec![0], vec![1]]);
        let mut out = Vec::new();
        p.completion_times(&c, &mut out);
        // Slot 0 finishes at 2.0 on proc 0; slot 1 then runs 1.0 s on
        // proc 1, finishing at 3.0 — not at 1.0 as the independent walk
        // would claim.
        assert!((out[0] - 2.0).abs() < 1e-12);
        assert!((out[1] - 3.0).abs() < 1e-12);
        // Makespan reflects the precedence stall exactly.
        assert!((p.makespan(&c) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dag_mode_declines_incremental_paths_and_repairs() {
        let batch = [task(0, 100.0), task(1, 100.0), task(2, 100.0)];
        let procs = [proc(100.0, 0.0, 0.0), proc(100.0, 0.0, 0.0)];
        let prec = SlotPrecedence::new(vec![vec![], vec![0], vec![0]]);
        let p = BatchProblem::new(&batch, &procs, &config()).with_precedence(&prec);
        // Swap delta declines: cross-queue coupling.
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2]]);
        let mut comps = Vec::new();
        p.evaluate_into(&c, &mut comps);
        c.genes_swap(0, 1);
        assert!(p.evaluate_swap_delta(&c, 0, 1, &mut comps).is_none());
        // Repair is wired through the Problem trait: the swapped order
        // (1 before 0) violates the chain and is pulled back.
        assert!(p.repair(&mut c));
        assert_eq!(c.to_queues(), vec![vec![0, 1], vec![2]]);
        assert!(!p.repair(&mut c), "feasible order is the fixed point");
        // Improve declines in DAG mode.
        let mut rng = dts_distributions::Prng::seed_from(7);
        let (f, _) = p.evaluate_into(&c, &mut comps);
        assert!(p.improve(&mut c, f, &mut comps, &mut rng).is_none());
    }

    #[test]
    fn slot_precedence_maps_graph_edges_into_the_batch() {
        use dts_model::TaskGraph;
        // Global graph 0→1→2; the batch holds tasks 1 and 2 only, so the
        // edge 0→1 drops (0 is outside, i.e. already complete) and 1→2
        // maps to slots 0→1.
        let graph = TaskGraph::new(3, &[(0, 1), (1, 2)]).unwrap();
        let batch = [task(1, 10.0), task(2, 10.0)];
        let prec = slot_precedence(&batch, &graph);
        assert_eq!(prec.preds_of(0), &[] as &[u32]);
        assert_eq!(prec.preds_of(1), &[0]);
        // An all-edges-dropped batch yields the unconstrained table.
        let tail = [task(2, 10.0)];
        assert!(slot_precedence(&tail, &graph).is_unconstrained());
    }

    #[test]
    #[should_panic]
    fn empty_processors_rejected() {
        let batch = [task(0, 1.0)];
        let procs: [ProcessorState; 0] = [];
        let _ = BatchProblem::new(&batch, &procs, &config());
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let batch = [task(0, 1.0)];
        let procs = [proc(0.0, 0.0, 0.0)];
        let _ = BatchProblem::new(&batch, &procs, &config());
    }
}
