//! Dynamic batch sizing (§3.7).
//!
//! > "We wish to define batch sizes that are large enough so that the
//! > processor hosting the scheduler is utilized fully (and to achieve low
//! > makespans), but not too large that any processors become idle before
//! > the schedule has been fully computed. … After the pth batch has been
//! > scheduled, the first processor will become idle after
//! > s_p = minⱼ (δⱼ / Pⱼ) … We choose H_{p+1} = ⌊(Γ_{s_p} + 1)^{1/2}⌋ as a
//! > simple approximation of the optimal size for batch p+1."
//!
//! The tension the rule balances: the GA takes Θ(H²) time, so doubling the
//! batch quadruples scheduling latency while the shortest queue only grows
//! linearly. Taking the square root of the (smoothed) idle horizon keeps
//! the two in step. We add a configurable linear `scale` on top of the
//! paper's rule (see DESIGN.md §5.4) because the raw `⌊√(Γs+1)⌋` produces
//! single-digit batches for second-scale horizons.

use dts_model::Smoother;

/// Tracks the smoothed idle-horizon signal and produces the next batch
/// size.
#[derive(Debug, Clone)]
pub struct BatchSizer {
    smoother: Smoother,
    scale: f64,
    initial: usize,
    max: usize,
}

impl BatchSizer {
    /// Creates a sizer.
    ///
    /// * `nu` — smoothing factor for Γ(s_p);
    /// * `scale` — linear multiplier on the √ rule;
    /// * `initial` — batch size used before any signal exists;
    /// * `max` — hard cap.
    pub fn new(nu: f64, scale: f64, initial: usize, max: usize) -> Self {
        assert!(initial >= 1 && max >= 1 && scale > 0.0);
        Self {
            smoother: Smoother::new(nu),
            scale,
            initial: initial.min(max),
            max,
        }
    }

    /// Records the post-assignment idle horizon `s_p = minⱼ(δⱼ/Pⱼ)` of the
    /// batch just planned.
    pub fn observe_idle_horizon(&mut self, s_p: f64) {
        self.smoother.observe(s_p.max(0.0));
    }

    /// The size for the next batch: `⌊ scale · √(Γ(s) + 1) ⌋`, clamped to
    /// `[1, max]`; the configured `initial` before any observation.
    pub fn next_batch_size(&self) -> usize {
        match self.smoother.value() {
            None => self.initial,
            Some(gamma) => {
                let h = (self.scale * (gamma + 1.0).sqrt()).floor() as usize;
                h.clamp(1, self.max)
            }
        }
    }

    /// The smoothed idle-horizon signal Γ(s), if any.
    pub fn signal(&self) -> Option<f64> {
        self.smoother.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_size_before_signal() {
        let b = BatchSizer::new(0.5, 40.0, 200, 1000);
        assert_eq!(b.next_batch_size(), 200);
    }

    #[test]
    fn paper_rule_with_unit_scale() {
        // With scale = 1 the rule is exactly ⌊√(Γs+1)⌋; a constant signal
        // of 99 seconds gives ⌊√100⌋ = 10.
        let mut b = BatchSizer::new(1.0, 1.0, 200, 1000);
        b.observe_idle_horizon(99.0);
        assert_eq!(b.next_batch_size(), 10);
    }

    #[test]
    fn batch_grows_with_idle_horizon() {
        let mut b = BatchSizer::new(1.0, 40.0, 200, 100_000);
        b.observe_idle_horizon(1.0);
        let small = b.next_batch_size();
        b.observe_idle_horizon(400.0);
        let large = b.next_batch_size();
        assert!(large > small, "{large} should exceed {small}");
    }

    #[test]
    fn clamped_to_max_and_min() {
        let mut b = BatchSizer::new(1.0, 40.0, 200, 500);
        b.observe_idle_horizon(1e9);
        assert_eq!(b.next_batch_size(), 500);
        let mut tiny = BatchSizer::new(1.0, 0.001, 200, 500);
        tiny.observe_idle_horizon(0.0);
        assert_eq!(tiny.next_batch_size(), 1);
    }

    #[test]
    fn smoothing_damps_spikes() {
        let mut b = BatchSizer::new(0.1, 1.0, 200, 100_000);
        b.observe_idle_horizon(100.0);
        let baseline = b.next_batch_size();
        // One huge spike, ν = 0.1: the smoothed value barely moves.
        b.observe_idle_horizon(10_000.0);
        let after_spike = b.next_batch_size();
        assert!(after_spike < baseline * 4, "{after_spike} vs {baseline}");
    }

    #[test]
    fn negative_horizons_are_clamped() {
        let mut b = BatchSizer::new(1.0, 1.0, 200, 500);
        b.observe_idle_horizon(-5.0);
        assert_eq!(b.next_batch_size(), 1); // ⌊√1⌋
    }

    #[test]
    fn initial_respects_max() {
        let b = BatchSizer::new(0.5, 40.0, 200, 50);
        assert_eq!(b.next_batch_size(), 50);
    }
}
