//! The rebalancing heuristic of §3.5.
//!
//! > "For each individual in the population, in each generation, we select
//! > the most heavily loaded processor. A task is then selected at random
//! > from another processor and if it is smaller than a task in the most
//! > heavily loaded processor, a swap is performed. We only allow a maximum
//! > of 5 random searches for a smaller task. If the resulting schedule is
//! > fitter, it is kept."
//!
//! The swap exchanges a *small* task from elsewhere with a *larger* task on
//! the bottleneck processor, shrinking the heaviest queue's load while
//! keeping queue lengths intact — a directed move no blind mutation would
//! find quickly.

use dts_distributions::{Prng, Rng};
use dts_ga::{Chromosome, Gene, Problem};

use crate::fitness::BatchProblem;

/// One rebalance attempt. Returns the new fitness if a fitter schedule was
/// found and committed, `None` otherwise (the chromosome is unchanged).
///
/// `probes` bounds the random searches for a larger task on the heaviest
/// processor (the paper uses 5).
pub fn rebalance_once(
    problem: &BatchProblem<'_>,
    c: &mut Chromosome,
    current_fitness: f64,
    probes: u32,
    rng: &mut Prng,
) -> Option<f64> {
    let n_procs = c.n_procs() as usize;
    if n_procs < 2 {
        return None;
    }

    // ---- locate the most heavily loaded processor --------------------
    // Load = completion time (existing load + batch work + comm), matching
    // what the fitness function penalises.
    let mut completions = Vec::with_capacity(n_procs);
    problem.completion_times(c, &mut completions);
    let heavy = completions
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite completion times"))
        .map(|(i, _)| i)
        .expect("at least one processor");

    // ---- index gene positions per queue ------------------------------
    // One linear pass; positions of task genes grouped by processor.
    let mut heavy_positions: Vec<usize> = Vec::new();
    let mut donor_positions: Vec<usize> = Vec::new();
    {
        let mut proc = 0usize;
        for (i, g) in c.genes().iter().enumerate() {
            match g {
                Gene::Task(_) => {
                    if proc == heavy {
                        heavy_positions.push(i);
                    } else {
                        donor_positions.push(i);
                    }
                }
                Gene::Delim(_) => proc += 1,
            }
        }
    }
    if heavy_positions.is_empty() || donor_positions.is_empty() {
        return None;
    }

    // ---- pick the random donor task ----------------------------------
    let donor_pos = donor_positions[rng.below(donor_positions.len())];
    let donor_slot = match c.genes()[donor_pos] {
        Gene::Task(s) => s,
        Gene::Delim(_) => unreachable!("donor positions contain only tasks"),
    };
    let donor_size = problem.batch()[donor_slot as usize].mflops;

    // ---- probe for a larger task on the heavy processor --------------
    let mut swap_pos = None;
    for _ in 0..probes.max(1) {
        let pos = heavy_positions[rng.below(heavy_positions.len())];
        let slot = match c.genes()[pos] {
            Gene::Task(s) => s,
            Gene::Delim(_) => unreachable!("heavy positions contain only tasks"),
        };
        if problem.batch()[slot as usize].mflops > donor_size {
            swap_pos = Some(pos);
            break;
        }
    }
    let heavy_pos = swap_pos?;

    // ---- tentative swap, keep only if fitter --------------------------
    c.genes_swap(donor_pos, heavy_pos);
    let new_fitness = problem.fitness(c);
    if new_fitness > current_fitness {
        Some(new_fitness)
    } else {
        c.genes_swap(donor_pos, heavy_pos); // revert
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PnConfig;
    use crate::fitness::ProcessorState;
    use dts_model::{SimTime, Task, TaskId};

    fn tasks(sizes: &[f64]) -> Vec<Task> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| Task::new(TaskId(i as u32), m, SimTime::ZERO))
            .collect()
    }

    fn procs(n: usize) -> Vec<ProcessorState> {
        (0..n)
            .map(|_| ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            })
            .collect()
    }

    #[test]
    fn rebalance_moves_load_off_the_heavy_processor() {
        // Processor 0 holds two huge tasks; processor 1 a tiny one.
        let batch = tasks(&[1000.0, 1000.0, 10.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2]]);
        let f0 = problem.fitness(&c);
        let mut rng = Prng::seed_from(1);
        let mut improved = false;
        for _ in 0..20 {
            if let Some(f) = rebalance_once(&problem, &mut c, f0, 5, &mut rng) {
                assert!(f > f0);
                improved = true;
                break;
            }
        }
        assert!(improved, "rebalance should find the obvious swap");
        // The big task moved off processor 0 in exchange for the small one.
        let queues = c.to_queues();
        let load0: f64 = queues[0].iter().map(|&s| batch[s as usize].mflops).sum();
        assert!(load0 < 2000.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rebalance_never_worsens() {
        let batch = tasks(&[500.0, 300.0, 200.0, 100.0, 50.0]);
        let ps = procs(3);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2, 3], vec![4]]);
        let mut fitness = problem.fitness(&c);
        let mut rng = Prng::seed_from(2);
        for _ in 0..200 {
            if let Some(f) = rebalance_once(&problem, &mut c, fitness, 5, &mut rng) {
                assert!(f >= fitness, "keep-if-fitter violated");
                fitness = f;
            }
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn single_processor_is_noop() {
        let batch = tasks(&[1.0, 2.0]);
        let ps = procs(1);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1]]);
        let f = problem.fitness(&c);
        let mut rng = Prng::seed_from(3);
        assert!(rebalance_once(&problem, &mut c, f, 5, &mut rng).is_none());
    }

    #[test]
    fn empty_donor_queues_are_handled() {
        // All tasks on the heavy processor: nothing to donate.
        let batch = tasks(&[10.0, 20.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        let f = problem.fitness(&c);
        let mut rng = Prng::seed_from(4);
        assert!(rebalance_once(&problem, &mut c, f, 5, &mut rng).is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn equal_sizes_cannot_swap() {
        // Donor task is never *smaller* than a heavy task: strict inequality.
        let batch = tasks(&[100.0, 100.0, 100.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2]]);
        let f = problem.fitness(&c);
        let mut rng = Prng::seed_from(5);
        for _ in 0..50 {
            assert!(rebalance_once(&problem, &mut c, f, 5, &mut rng).is_none());
        }
    }
}
