//! The rebalancing heuristic of §3.5.
//!
//! > "For each individual in the population, in each generation, we select
//! > the most heavily loaded processor. A task is then selected at random
//! > from another processor and if it is smaller than a task in the most
//! > heavily loaded processor, a swap is performed. We only allow a maximum
//! > of 5 random searches for a smaller task. If the resulting schedule is
//! > fitter, it is kept."
//!
//! The swap exchanges a *small* task from elsewhere with a *larger* task on
//! the bottleneck processor, shrinking the heaviest queue's load while
//! keeping queue lengths intact — a directed move no blind mutation would
//! find quickly.
//!
//! The caller supplies the schedule's per-processor completion times and
//! this function keeps them current: the heavy-processor scan reads them
//! directly, a candidate swap is costed by re-summing only the two affected
//! queues (`BatchProblem::queue_cost_substituted`), and on commit the two
//! entries are updated in place. No call path walks the full chromosome,
//! yet every number matches the full walk bit-for-bit because affected
//! queues are always re-accumulated in gene order.

use dts_distributions::{Prng, Rng};
use dts_ga::{Chromosome, Gene};

use crate::fitness::BatchProblem;

/// One rebalance attempt. Returns the new fitness if a fitter schedule was
/// found and committed, `None` otherwise (the chromosome is unchanged).
///
/// `completions` must hold the schedule's current per-processor completion
/// times (as produced by `evaluate_into` / `completion_times`); on a commit
/// the two affected entries are updated so the vector stays current across
/// repeated attempts.
///
/// `probes` bounds the random searches for a larger task on the heaviest
/// processor (the paper uses 5).
pub fn rebalance_once(
    problem: &BatchProblem<'_>,
    c: &mut Chromosome,
    current_fitness: f64,
    completions: &mut [f64],
    probes: u32,
    rng: &mut Prng,
) -> Option<f64> {
    let n_procs = c.n_procs() as usize;
    if n_procs < 2 {
        return None;
    }
    debug_assert_eq!(completions.len(), n_procs);

    // ---- locate the most heavily loaded processor --------------------
    // Load = completion time (existing load + batch work + comm), matching
    // what the fitness function penalises. `total_cmp` keeps the scan
    // panic-free even if a NaN slips past the constructor's validation;
    // for the finite non-negative times it orders like `partial_cmp`.
    let heavy = completions
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least one processor");

    // ---- index gene positions per queue ------------------------------
    // One linear pass; positions of task genes grouped by processor. Donor
    // positions remember their queue so the swap can be costed without
    // another scan.
    let mut heavy_positions: Vec<usize> = Vec::new();
    let mut donor_positions: Vec<(usize, usize)> = Vec::new();
    {
        let mut proc = 0usize;
        for (i, g) in c.genes().iter().enumerate() {
            match g {
                Gene::Task(_) => {
                    if proc == heavy {
                        heavy_positions.push(i);
                    } else {
                        donor_positions.push((i, proc));
                    }
                }
                Gene::Delim(_) => proc += 1,
            }
        }
    }
    if heavy_positions.is_empty() || donor_positions.is_empty() {
        return None;
    }

    // ---- pick the random donor task ----------------------------------
    let (donor_pos, donor_proc) = donor_positions[rng.below(donor_positions.len())];
    let donor_slot = match c.genes()[donor_pos] {
        Gene::Task(s) => s,
        Gene::Delim(_) => unreachable!("donor positions contain only tasks"),
    };
    let donor_size = problem.batch()[donor_slot as usize].mflops;

    // ---- probe for a larger task on the heavy processor --------------
    let mut swap = None;
    for _ in 0..probes.max(1) {
        let pos = heavy_positions[rng.below(heavy_positions.len())];
        let slot = match c.genes()[pos] {
            Gene::Task(s) => s,
            Gene::Delim(_) => unreachable!("heavy positions contain only tasks"),
        };
        if problem.batch()[slot as usize].mflops > donor_size {
            swap = Some((pos, slot));
            break;
        }
    }
    let (heavy_pos, heavy_slot) = swap?;

    // ---- cost the swap on the two affected queues only ----------------
    // Re-sum each queue in gene order with the candidate substitution in
    // place — the exact sums a full walk would produce after the swap — and
    // score the substituted completion vector. The chromosome itself is
    // only touched if the move wins.
    let new_heavy =
        problem.queue_cost_substituted(c, heavy, &heavy_positions, heavy_pos, donor_slot);
    let donor_queue: Vec<usize> = donor_positions
        .iter()
        .filter(|&&(_, p)| p == donor_proc)
        .map(|&(pos, _)| pos)
        .collect();
    let new_donor =
        problem.queue_cost_substituted(c, donor_proc, &donor_queue, donor_pos, heavy_slot);
    let new_fitness =
        problem.fitness_with_substitution(completions, (heavy, new_heavy), (donor_proc, new_donor));

    if new_fitness > current_fitness {
        c.genes_swap(donor_pos, heavy_pos);
        completions[heavy] = new_heavy;
        completions[donor_proc] = new_donor;
        Some(new_fitness)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PnConfig;
    use crate::fitness::ProcessorState;
    use dts_ga::Problem;
    use dts_model::{SimTime, Task, TaskId};

    fn tasks(sizes: &[f64]) -> Vec<Task> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| Task::new(TaskId(i as u32), m, SimTime::ZERO))
            .collect()
    }

    fn procs(n: usize) -> Vec<ProcessorState> {
        (0..n)
            .map(|_| ProcessorState {
                rate: 100.0,
                existing_load_mflops: 0.0,
                comm_cost: 0.0,
            })
            .collect()
    }

    fn completions_of(problem: &BatchProblem<'_>, c: &Chromosome) -> Vec<f64> {
        let mut out = Vec::new();
        problem.completion_times(c, &mut out);
        out
    }

    #[test]
    fn rebalance_moves_load_off_the_heavy_processor() {
        // Processor 0 holds two huge tasks; processor 1 a tiny one.
        let batch = tasks(&[1000.0, 1000.0, 10.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2]]);
        let f0 = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(1);
        let mut improved = false;
        for _ in 0..20 {
            if let Some(f) = rebalance_once(&problem, &mut c, f0, &mut completions, 5, &mut rng) {
                assert!(f > f0);
                improved = true;
                break;
            }
        }
        assert!(improved, "rebalance should find the obvious swap");
        // The big task moved off processor 0 in exchange for the small one.
        let queues = c.to_queues();
        let load0: f64 = queues[0].iter().map(|&s| batch[s as usize].mflops).sum();
        assert!(load0 < 2000.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rebalance_never_worsens() {
        let batch = tasks(&[500.0, 300.0, 200.0, 100.0, 50.0]);
        let ps = procs(3);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2, 3], vec![4]]);
        let mut fitness = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(2);
        for _ in 0..200 {
            if let Some(f) =
                rebalance_once(&problem, &mut c, fitness, &mut completions, 5, &mut rng)
            {
                assert!(f >= fitness, "keep-if-fitter violated");
                fitness = f;
            }
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn maintained_completions_match_fresh_walk_bitwise() {
        // The in-place updates on commit must track the full walk exactly:
        // any drift here would silently desynchronise the delta-evaluation
        // and memo paths from the oracle.
        let batch = tasks(&[
            512.0, 480.0, 300.0, 250.0, 200.0, 130.0, 90.0, 60.0, 30.0, 10.0,
        ]);
        let ps = procs(4);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c =
            Chromosome::from_queues(&[vec![0, 1, 2], vec![3, 4], vec![5, 6, 7], vec![8, 9]]);
        let mut fitness = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(7);
        let mut commits = 0u32;
        for _ in 0..300 {
            if let Some(f) =
                rebalance_once(&problem, &mut c, fitness, &mut completions, 5, &mut rng)
            {
                fitness = f;
                commits += 1;
            }
            let fresh = completions_of(&problem, &c);
            for (a, b) in completions.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "maintained completions drifted");
            }
            assert_eq!(
                fitness.to_bits(),
                problem.fitness(&c).to_bits(),
                "maintained fitness drifted"
            );
        }
        assert!(commits > 0, "expected at least one committed rebalance");
    }

    #[test]
    fn single_processor_is_noop() {
        let batch = tasks(&[1.0, 2.0]);
        let ps = procs(1);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1]]);
        let f = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(3);
        assert!(rebalance_once(&problem, &mut c, f, &mut completions, 5, &mut rng).is_none());
    }

    #[test]
    fn empty_donor_queues_are_handled() {
        // All tasks on the heavy processor: nothing to donate.
        let batch = tasks(&[10.0, 20.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![]]);
        let f = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(4);
        assert!(rebalance_once(&problem, &mut c, f, &mut completions, 5, &mut rng).is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn equal_sizes_cannot_swap() {
        // Donor task is never *smaller* than a heavy task: strict inequality.
        let batch = tasks(&[100.0, 100.0, 100.0]);
        let ps = procs(2);
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &ps, &cfg);
        let mut c = Chromosome::from_queues(&[vec![0, 1], vec![2]]);
        let f = problem.fitness(&c);
        let mut completions = completions_of(&problem, &c);
        let mut rng = Prng::seed_from(5);
        for _ in 0..50 {
            assert!(rebalance_once(&problem, &mut c, f, &mut completions, 5, &mut rng).is_none());
        }
    }
}
