//! Modelled GA compute time.
//!
//! The paper dedicates a processor to the scheduler; while the GA evolves,
//! simulated time passes on that host and clients keep draining their
//! queues. To keep simulations deterministic and host-independent we charge
//! a *modelled* cost per generation instead of wall-clock time (DESIGN.md
//! §5.7): one generation costs
//!
//! ```text
//! seconds = per_gene · ρ · (H + M − 1) · (passes + rebalance_passes · R)
//! ```
//!
//! where ρ is the population size, `H + M − 1` the chromosome length,
//! `passes` the fixed per-generation work (selection + crossover + fitness
//! evaluation ≈ 3 linear passes), and each §3.5 rebalance costs about one
//! more fitness pass — which is what makes Fig. 4's measured time **linear
//! in the number of rebalances**, a shape this model preserves by
//! construction.

/// Per-generation cost model for the GA scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaTimeModel {
    /// Seconds per (individual × gene × pass). The default was calibrated
    /// against release-build measurements of this crate's GA on a ~2 GHz
    /// core (≈ 15 ns per gene-visit including overheads).
    pub per_gene: f64,
    /// Fixed linear passes per generation (selection, crossover, fitness).
    pub passes: f64,
    /// Additional passes per rebalance per generation.
    pub rebalance_passes: f64,
}

impl Default for GaTimeModel {
    fn default() -> Self {
        Self {
            per_gene: 15e-9,
            passes: 3.0,
            rebalance_passes: 1.0,
        }
    }
}

impl GaTimeModel {
    /// Cost of one generation for batch size `h`, `m` processors,
    /// population `rho` and `rebalances` rebalance attempts per individual.
    pub fn seconds_per_generation(&self, h: usize, m: usize, rho: usize, rebalances: u32) -> f64 {
        let genes = (h + m.saturating_sub(1)) as f64;
        self.per_gene
            * rho as f64
            * genes
            * (self.passes + self.rebalance_passes * rebalances as f64)
    }

    /// Generations affordable within `budget_seconds` (0 if the budget is
    /// non-positive).
    pub fn generations_within(
        &self,
        budget_seconds: f64,
        h: usize,
        m: usize,
        rho: usize,
        rebalances: u32,
    ) -> u32 {
        if budget_seconds <= 0.0 {
            return 0;
        }
        let per_gen = self.seconds_per_generation(h, m, rho, rebalances);
        if per_gen <= 0.0 {
            return u32::MAX;
        }
        (budget_seconds / per_gen).floor().min(u32::MAX as f64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_linearly_in_batch_and_population() {
        let m = GaTimeModel::default();
        let base = m.seconds_per_generation(100, 50, 20, 1);
        // Chromosome lengths are H + M − 1 = 149 and 249 genes.
        let ratio = m.seconds_per_generation(200, 50, 20, 1) / base;
        assert!((ratio - 249.0 / 149.0).abs() < 1e-12);
        // Doubling the population exactly doubles the cost.
        assert!((m.seconds_per_generation(100, 50, 40, 1) / base - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_linear_in_rebalances() {
        // The Fig. 4 shape: time(R) = a + b·R.
        let m = GaTimeModel::default();
        let t0 = m.seconds_per_generation(100, 50, 20, 0);
        let t1 = m.seconds_per_generation(100, 50, 20, 1);
        let t5 = m.seconds_per_generation(100, 50, 20, 5);
        let slope1 = t1 - t0;
        let slope5 = (t5 - t0) / 5.0;
        assert!((slope1 - slope5).abs() < 1e-15);
        assert!(slope1 > 0.0);
    }

    #[test]
    fn generations_within_budget() {
        let m = GaTimeModel::default();
        let per_gen = m.seconds_per_generation(200, 50, 20, 1);
        assert_eq!(m.generations_within(per_gen * 10.0, 200, 50, 20, 1), 10);
        assert_eq!(m.generations_within(0.0, 200, 50, 20, 1), 0);
        assert_eq!(m.generations_within(-5.0, 200, 50, 20, 1), 0);
    }

    #[test]
    fn default_magnitudes_are_sane() {
        // A paper-sized batch (H=200, M=50, ρ=20, R=1) should cost
        // well under a millisecond per generation — so a full 1000-gen run
        // stays under a second of scheduler-host time.
        let m = GaTimeModel::default();
        let per_gen = m.seconds_per_generation(200, 50, 20, 1);
        assert!(per_gen > 1e-6 && per_gen < 1e-3, "{per_gen}");
    }
}
