//! [`PnScheduler`]: the paper's scheduler as a [`dts_model::Scheduler`].
//!
//! Operational behaviour (§3):
//!
//! * arriving tasks accumulate in a FCFS unscheduled queue;
//! * each [`plan`](PnScheduler::plan) invocation takes the next batch
//!   (dynamically sized, §3.7), runs the GA over it, and appends the winning
//!   assignment to the per-processor queues;
//! * the GA's generation budget is capped by the estimated time until the
//!   first processor idles (§3.4's third stopping condition), charged
//!   against the dedicated scheduler host through the
//!   [`GaTimeModel`](crate::time_model::GaTimeModel);
//! * communication-cost and execution-rate estimates arrive via the
//!   [`SystemView`], which the simulator maintains with the §3.6 smoothing
//!   function;
//! * with [`SeedStrategy::CarryOver`] the scheduler keeps the previous
//!   batch's final GA population and warm-starts the next run from its
//!   remapped elites (see [`crate::init::remap_elite`]) — the only state
//!   that persists across `plan` calls besides the queues, and itself a
//!   pure function of the seeds.

use std::collections::VecDeque;

use dts_distributions::{Prng, Rng};
use dts_ga::{Chromosome, CycleCrossover, RouletteWheel, SwapMutation};
use dts_model::{PlanOutcome, ProcessorId, Scheduler, SchedulerMode, SystemView, Task, TaskQueues};

use crate::batch_run::run_batch_ga;
use crate::batching::BatchSizer;
use crate::config::{PnConfig, SeedStrategy};
use crate::fitness::ProcessorState;
use crate::init::remap_islands;

/// The PN dynamic GA scheduler.
pub struct PnScheduler {
    config: PnConfig,
    unscheduled: VecDeque<Task>,
    queues: TaskQueues,
    batch_sizer: BatchSizer,
    rng: Prng,
    batches_planned: u64,
    /// The previous batch's final populations (best first), kept when
    /// [`SeedStrategy::CarryOver`] is configured; each list's head is
    /// remapped onto the next batch as warm-start seeds. A monolithic run
    /// carries one list; an island run (`config.islands.islands > 1`)
    /// carries one list *per island*, remapped independently so islands'
    /// elites never mix across planning invocations.
    carried: Option<Vec<Vec<Chromosome>>>,
}

impl PnScheduler {
    /// Creates a scheduler for `n_procs` processors.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or `n_procs == 0`.
    pub fn new(n_procs: usize, config: PnConfig) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        config.validate().expect("invalid PnConfig");
        let batch_sizer = BatchSizer::new(
            config.batch_nu,
            config.batch_scale,
            config.initial_batch,
            config.max_batch,
        );
        let rng = Prng::seed_from(config.seed);
        Self {
            config,
            unscheduled: VecDeque::new(),
            queues: TaskQueues::new(n_procs),
            batch_sizer,
            rng,
            batches_planned: 0,
            carried: None,
        }
    }

    /// Number of batches planned so far.
    pub fn batches_planned(&self) -> u64 {
        self.batches_planned
    }

    /// The configuration in use.
    pub fn config(&self) -> &PnConfig {
        &self.config
    }

    /// Builds the per-processor state vector the fitness function needs:
    /// `Lⱼ` = queued-at-scheduler + in-flight MFLOPs.
    fn processor_states(&self, view: &SystemView) -> Vec<ProcessorState> {
        view.processors
            .iter()
            .map(|p| ProcessorState {
                rate: p.rate_estimate.max(1e-9),
                existing_load_mflops: self.queues.queued_mflops(p.id) + p.inflight_mflops,
                comm_cost: if self.config.use_comm_estimates {
                    p.comm_estimate
                } else {
                    0.0
                },
            })
            .collect()
    }
}

impl Scheduler for PnScheduler {
    fn name(&self) -> &'static str {
        "PN"
    }

    fn mode(&self) -> SchedulerMode {
        SchedulerMode::Batch
    }

    fn enqueue(&mut self, tasks: &[Task]) {
        self.unscheduled.extend(tasks.iter().copied());
    }

    fn unscheduled_len(&self) -> usize {
        self.unscheduled.len()
    }

    fn plan(&mut self, view: &SystemView) -> PlanOutcome {
        if self.unscheduled.is_empty() {
            return PlanOutcome::IDLE;
        }
        let m = view.processors.len();
        let rho = self.config.ga.population_size;
        let rebalances = self.config.rebalances_per_generation;

        // --- batch selection (FCFS prefix, dynamically sized, §3.7) ----
        let h = self
            .batch_sizer
            .next_batch_size()
            .min(self.unscheduled.len());
        let batch: Vec<Task> = self.unscheduled.drain(..h).collect();

        // --- generation budget from the idle horizon (§3.4) ------------
        let per_gen = self
            .config
            .time_model
            .seconds_per_generation(h, m, rho, rebalances);
        let budget = match view.seconds_until_first_idle {
            // A processor is already idle: compute the bare minimum.
            None => self.config.min_generations,
            Some(secs) => {
                let affordable = self
                    .config
                    .time_model
                    .generations_within(secs, h, m, rho, rebalances);
                affordable.max(self.config.min_generations)
            }
        };

        // --- evolve ------------------------------------------------------
        let states = self.processor_states(view);
        let seed = self.rng.next_u64();
        // Warm start (SeedStrategy::CarryOver): remap the previous batch's
        // elites onto this batch's shape, island by island. The remap is
        // deterministic, so the whole lifecycle stays a pure function of
        // the seeds.
        let warm_islands: Vec<Vec<Chromosome>> = match (self.config.seed_strategy, &self.carried) {
            (SeedStrategy::CarryOver { elites }, Some(prev)) => {
                remap_islands(prev, elites, &batch, &states)
            }
            _ => Vec::new(),
        };
        let mut outcome = run_batch_ga(
            &batch,
            &states,
            &self.config,
            &RouletteWheel,
            &CycleCrossover,
            &SwapMutation,
            &[],
            &warm_islands,
            None,
            Some(budget),
            None,
            seed,
        );
        if let SeedStrategy::CarryOver { elites } = self.config.seed_strategy {
            // Only the top `elites` schedules per island are ever read
            // back; move them out of the outcome instead of cloning whole
            // populations. A monolithic run carries a single list.
            let carried: Vec<Vec<Chromosome>> = if outcome.islands.is_empty() {
                let mut pop = std::mem::take(&mut outcome.ga.final_population);
                pop.truncate(elites);
                vec![pop]
            } else {
                outcome
                    .islands
                    .iter_mut()
                    .map(|island| {
                        let mut pop = std::mem::take(&mut island.final_population);
                        pop.truncate(elites);
                        pop
                    })
                    .collect()
            };
            self.carried = Some(carried);
        }

        // --- commit the winning assignment -------------------------------
        for (proc, queue) in outcome.queues.iter().enumerate() {
            let pid = ProcessorId(proc as u16);
            for &slot in queue {
                self.queues.push(pid, batch[slot as usize]);
            }
        }
        self.batches_planned += 1;

        // --- update the §3.7 idle-horizon signal -------------------------
        let s_p = view
            .processors
            .iter()
            .map(|p| {
                let load = self.queues.queued_mflops(p.id) + p.inflight_mflops;
                load / p.rate_estimate.max(1e-9)
            })
            .fold(f64::INFINITY, f64::min);
        if s_p.is_finite() {
            self.batch_sizer.observe_idle_horizon(s_p);
        }

        PlanOutcome {
            tasks_assigned: h,
            compute_seconds: per_gen * outcome.generations as f64,
            generations: outcome.generations,
        }
    }

    fn next_task_for(&mut self, p: ProcessorId) -> Option<Task> {
        self.queues.pop(p)
    }

    fn queued_len(&self, p: ProcessorId) -> usize {
        self.queues.queued_len(p)
    }

    fn queued_mflops(&self, p: ProcessorId) -> f64 {
        self.queues.queued_mflops(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dts_model::sched::ProcessorView;
    use dts_model::{SimTime, TaskId};

    fn tasks(n: usize, size: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(TaskId(i as u32), size, SimTime::ZERO))
            .collect()
    }

    fn view(rates: &[f64]) -> SystemView {
        SystemView {
            now: SimTime::ZERO,
            processors: rates
                .iter()
                .enumerate()
                .map(|(i, &rate)| ProcessorView {
                    id: ProcessorId(i as u16),
                    rate_estimate: rate,
                    inflight_mflops: 0.0,
                    comm_estimate: 0.1,
                })
                .collect(),
            seconds_until_first_idle: Some(60.0),
        }
    }

    fn quick_config() -> PnConfig {
        let mut c = PnConfig::default();
        c.ga.max_generations = 50;
        c.initial_batch = 16;
        c
    }

    #[test]
    fn plan_assigns_a_batch() {
        let mut s = PnScheduler::new(3, quick_config());
        s.enqueue(&tasks(40, 100.0));
        assert_eq!(s.unscheduled_len(), 40);
        let out = s.plan(&view(&[100.0, 150.0, 80.0]));
        assert_eq!(out.tasks_assigned, 16);
        assert_eq!(s.unscheduled_len(), 24);
        let queued: usize = (0..3).map(|i| s.queued_len(ProcessorId(i))).sum();
        assert_eq!(queued, 16);
        assert!(out.compute_seconds > 0.0);
        assert!(out.generations > 0);
    }

    #[test]
    fn empty_plan_is_idle() {
        let mut s = PnScheduler::new(2, quick_config());
        assert_eq!(s.plan(&view(&[100.0, 100.0])), PlanOutcome::IDLE);
    }

    #[test]
    fn next_task_follows_queue_order() {
        let mut s = PnScheduler::new(2, quick_config());
        s.enqueue(&tasks(8, 50.0));
        s.plan(&view(&[100.0, 100.0]));
        let p0 = ProcessorId(0);
        let before = s.queued_len(p0);
        if before > 0 {
            let first = s.next_task_for(p0).unwrap();
            assert_eq!(s.queued_len(p0), before - 1);
            assert!(first.mflops > 0.0);
        }
        assert!(s.next_task_for(ProcessorId(1)).is_some() || s.queued_len(ProcessorId(1)) == 0);
    }

    #[test]
    fn idle_processor_shrinks_generations() {
        let mut hurried = PnScheduler::new(2, quick_config());
        hurried.enqueue(&tasks(16, 100.0));
        let mut v = view(&[100.0, 100.0]);
        v.seconds_until_first_idle = None; // someone is already idle
        let out = hurried.plan(&v);
        assert_eq!(out.generations, hurried.config.min_generations);
    }

    #[test]
    fn conservation_across_multiple_batches() {
        let mut s = PnScheduler::new(4, quick_config());
        s.enqueue(&tasks(100, 75.0));
        let v = view(&[100.0, 120.0, 90.0, 60.0]);
        while s.unscheduled_len() > 0 {
            s.plan(&v);
        }
        let mut popped = 0;
        for i in 0..4 {
            while s.next_task_for(ProcessorId(i)).is_some() {
                popped += 1;
            }
        }
        assert_eq!(popped, 100, "every task dispatched exactly once");
        // The dynamic sizer may grow batches beyond the initial 16, so the
        // batch count is only bounded, not exact.
        let batches = s.batches_planned();
        assert!((1..=7).contains(&batches), "batches = {batches}");
    }

    #[test]
    fn batch_size_adapts_over_time() {
        let mut s = PnScheduler::new(2, quick_config());
        s.enqueue(&tasks(500, 1000.0));
        let v = view(&[100.0, 100.0]);
        let first = s.plan(&v).tasks_assigned;
        let second = s.plan(&v).tasks_assigned;
        // After the first batch the sizer has a signal; with 1000-MFLOP
        // tasks on 100 Mflop/s processors the idle horizon is large, so the
        // batch should grow beyond the initial 16.
        assert_eq!(first, 16);
        assert!(second > first, "batch {second} should exceed {first}");
    }

    #[test]
    fn name_and_mode() {
        let s = PnScheduler::new(1, quick_config());
        assert_eq!(s.name(), "PN");
        assert_eq!(s.mode(), SchedulerMode::Batch);
    }

    /// Drains a scheduler's queues into per-processor task-id lists.
    fn drain_ids(s: &mut PnScheduler, n: usize) -> Vec<Vec<dts_model::TaskId>> {
        (0..n)
            .map(|i| {
                let mut ids = Vec::new();
                while let Some(t) = s.next_task_for(ProcessorId(i as u16)) {
                    ids.push(t.id);
                }
                ids
            })
            .collect()
    }

    /// Heterogeneous sizes: equal-size tasks make fresh and warm runs
    /// converge to the same plan, hiding carry-over effects.
    fn varied_tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let size = 50.0 + (i as f64 * 37.0) % 400.0;
                Task::new(TaskId(i as u32), size, SimTime::ZERO)
            })
            .collect()
    }

    fn run_batches(mut cfg: PnConfig, batches: usize) -> Vec<Vec<dts_model::TaskId>> {
        cfg.initial_batch = 10;
        cfg.max_batch = 10;
        let mut s = PnScheduler::new(3, cfg);
        s.enqueue(&varied_tasks(10 * batches));
        let v = view(&[100.0, 150.0, 80.0]);
        for _ in 0..batches {
            s.plan(&v);
        }
        assert_eq!(s.unscheduled_len(), 0);
        drain_ids(&mut s, 3)
    }

    #[test]
    fn warm_start_is_deterministic_and_complete() {
        let cfg = || {
            let mut c = quick_config();
            c.seed_strategy = SeedStrategy::CarryOver { elites: 5 };
            c
        };
        let a = run_batches(cfg(), 4);
        let b = run_batches(cfg(), 4);
        assert_eq!(a, b, "warm-start runs must be bit-stable");
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 40, "every task dispatched exactly once");
    }

    #[test]
    fn warm_start_changes_later_batches_only() {
        // The first batch has nothing to carry, so fresh and warm runs
        // coincide; from the second batch on the seeds (and RNG draw
        // counts) differ, so the plans may diverge.
        let fresh = run_batches(quick_config(), 4);
        let warm = run_batches(
            {
                let mut c = quick_config();
                c.seed_strategy = SeedStrategy::CarryOver { elites: 5 };
                c
            },
            4,
        );
        let total_fresh: usize = fresh.iter().map(Vec::len).sum();
        let total_warm: usize = warm.iter().map(Vec::len).sum();
        assert_eq!(total_fresh, 40);
        assert_eq!(total_warm, 40);
        assert_ne!(
            fresh, warm,
            "carry-over should alter the evolved plans after batch 1"
        );
    }

    #[test]
    fn fresh_strategy_never_retains_population() {
        let mut s = PnScheduler::new(2, quick_config());
        s.enqueue(&tasks(20, 100.0));
        let v = view(&[100.0, 100.0]);
        s.plan(&v);
        assert!(s.carried.is_none(), "Fresh must not accumulate state");
        let mut c = quick_config();
        c.seed_strategy = SeedStrategy::CarryOver { elites: 3 };
        let mut s = PnScheduler::new(2, c);
        s.enqueue(&tasks(20, 100.0));
        s.plan(&v);
        let carried = s.carried.as_ref().expect("carry-over retains population");
        assert_eq!(carried.len(), 1, "monolithic run carries one list");
        assert_eq!(carried[0].len(), 3, "only the elites are retained");
        assert!(carried[0].iter().all(|ch| ch.validate().is_ok()));
    }

    fn island_config() -> dts_ga::IslandConfig {
        dts_ga::IslandConfig {
            islands: 2,
            migration_interval: 5,
            migrants: 1,
            topology: dts_ga::Topology::Ring,
        }
    }

    #[test]
    fn island_warm_start_carries_one_list_per_island() {
        let mut c = quick_config().with_islands(island_config());
        c.seed_strategy = SeedStrategy::CarryOver { elites: 3 };
        let mut s = PnScheduler::new(3, c);
        s.enqueue(&varied_tasks(32));
        let v = view(&[100.0, 150.0, 80.0]);
        s.plan(&v);
        let carried = s.carried.as_ref().expect("elites carried");
        assert_eq!(carried.len(), 2, "one carried list per island");
        assert!(carried.iter().all(|isl| isl.len() == 3));
        assert!(carried.iter().flatten().all(|ch| ch.validate().is_ok()));
    }

    #[test]
    fn island_warm_start_survives_batch_shape_change_bit_stably() {
        // Regression (island warm-start across a shape change): batch 1
        // has 10 tasks, batch 2 only 6 — every island's elites must be
        // remapped independently onto the new shape, and the whole
        // lifecycle must stay bit-stable run to run.
        let run = || {
            let mut c = quick_config().with_islands(island_config());
            c.seed_strategy = SeedStrategy::CarryOver { elites: 3 };
            c.initial_batch = 10;
            c.max_batch = 10;
            let mut s = PnScheduler::new(3, c);
            s.enqueue(&varied_tasks(16));
            let v = view(&[100.0, 150.0, 80.0]);
            s.plan(&v); // 10-task batch
            let carried_shapes: Vec<usize> =
                s.carried.as_ref().unwrap().iter().map(Vec::len).collect();
            while s.unscheduled_len() > 0 {
                s.plan(&v); // remaining 6 tasks: shape change
            }
            (carried_shapes, drain_ids(&mut s, 3))
        };
        let (shapes_a, ids_a) = run();
        let (shapes_b, ids_b) = run();
        assert_eq!(shapes_a, vec![3, 3], "both islands carried elites");
        assert_eq!(shapes_a, shapes_b);
        assert_eq!(ids_a, ids_b, "island warm-start must be bit-stable");
        let total: usize = ids_a.iter().map(Vec::len).sum();
        assert_eq!(total, 16, "every task dispatched exactly once");
    }

    #[test]
    fn island_plans_match_across_worker_counts() {
        let run = |workers: usize| {
            let mut c = quick_config()
                .with_islands(island_config())
                .with_eval_workers(workers);
            c.seed_strategy = SeedStrategy::CarryOver { elites: 3 };
            c.initial_batch = 12;
            c.max_batch = 12;
            let mut s = PnScheduler::new(3, c);
            s.enqueue(&varied_tasks(24));
            let v = view(&[100.0, 150.0, 80.0]);
            while s.unscheduled_len() > 0 {
                s.plan(&v);
            }
            drain_ids(&mut s, 3)
        };
        let serial = run(1);
        assert_eq!(run(2), serial);
        assert_eq!(run(8), serial);
    }
}
