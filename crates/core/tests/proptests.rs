//! Property tests for the PN scheduler's components: fitness sanity,
//! rebalance safety, warm-start remapping, and whole-batch conservation.

use dts_core::batch_run::{schedule_batch, schedule_batch_warm};
use dts_core::fitness::{BatchProblem, ProcessorState};
use dts_core::init::{initial_population, list_scheduled_individual, remap_elite};
use dts_core::rebalance::rebalance_once;
use dts_core::PnConfig;
use dts_distributions::Prng;
use dts_ga::Problem;
use dts_model::{SimTime, Task, TaskId};
use proptest::prelude::*;

fn tasks_strategy() -> impl Strategy<Value = Vec<Task>> {
    proptest::collection::vec(1.0..5000.0f64, 1..60).prop_map(|sizes| {
        sizes
            .into_iter()
            .enumerate()
            .map(|(i, s)| Task::new(TaskId(i as u32), s, SimTime::ZERO))
            .collect()
    })
}

fn procs_strategy() -> impl Strategy<Value = Vec<ProcessorState>> {
    proptest::collection::vec((5.0..200.0f64, 0.0..5000.0f64, 0.0..30.0f64), 1..12).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(rate, load, comm)| ProcessorState {
                    rate,
                    existing_load_mflops: load,
                    comm_cost: comm,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fitness is always finite and in (0, 1]; makespan is at least δ_max
    /// and at least the work lower bound of whichever processor hosts it.
    #[test]
    fn fitness_and_makespan_bounds(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        frac in 0.0..=1.0f64,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &procs, &cfg);
        let mut rng = Prng::seed_from(seed);
        let c = list_scheduled_individual(&batch, &procs, frac, &mut rng);
        let f = problem.fitness(&c);
        prop_assert!(f.is_finite() && f > 0.0 && f <= 1.0, "fitness {f}");
        let ms = problem.makespan(&c);
        let max_delta = procs.iter().map(ProcessorState::delta).fold(0.0f64, f64::max);
        prop_assert!(ms + 1e-9 >= max_delta, "makespan {ms} below existing load {max_delta}");
        prop_assert!(ms.is_finite());
    }

    /// The rebalancing heuristic never loses tasks and never decreases
    /// fitness (keep-if-fitter).
    #[test]
    fn rebalance_safe(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &procs, &cfg);
        let mut rng = Prng::seed_from(seed);
        let mut c = list_scheduled_individual(&batch, &procs, 0.8, &mut rng);
        let mut fitness = problem.fitness(&c);
        let mut completions = Vec::new();
        problem.completion_times(&c, &mut completions);
        for _ in 0..16 {
            if let Some(nf) = rebalance_once(&problem, &mut c, fitness, &mut completions, 5, &mut rng) {
                prop_assert!(nf >= fitness);
                fitness = nf;
            }
            prop_assert!(c.validate().is_ok());
            // The maintained completion times must track the full walk
            // bit-for-bit — they feed the fitness memo and delta paths.
            let mut fresh = Vec::new();
            problem.completion_times(&c, &mut fresh);
            for (a, b) in completions.iter().zip(&fresh) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Delta-evaluation of an arbitrary gene swap is bit-identical to a
    /// full `evaluate_into` walk — fitness, makespan, and every completion
    /// time — whenever the delta path accepts the edit.
    #[test]
    fn swap_delta_matches_full_walk(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        frac in 0.0..=1.0f64,
        seed in 0u64..u64::MAX,
        swaps in proptest::collection::vec((0usize..4096, 0usize..4096), 1..40),
    ) {
        let cfg = PnConfig::default();
        let problem = BatchProblem::new(&batch, &procs, &cfg);
        let mut rng = Prng::seed_from(seed);
        let mut c = list_scheduled_individual(&batch, &procs, frac, &mut rng);
        let mut completions = Vec::new();
        problem.evaluate_into(&c, &mut completions);
        for (a, b) in swaps {
            let len = c.genes().len();
            let (i, j) = (a % len, b % len);
            c.genes_swap(i, j);
            let mut fresh = Vec::new();
            let (ff, fms) = problem.evaluate_into(&c, &mut fresh);
            match problem.evaluate_swap_delta(&c, i, j, &mut completions) {
                Some((df, dms)) => {
                    prop_assert_eq!(df.to_bits(), ff.to_bits(), "fitness drift");
                    prop_assert_eq!(dms.to_bits(), fms.to_bits(), "makespan drift");
                    for (x, y) in completions.iter().zip(&fresh) {
                        prop_assert_eq!(x.to_bits(), y.to_bits(), "completion drift");
                    }
                }
                None => completions = fresh,
            }
        }
    }

    /// The fitness memo changes nothing observable: a batch run with the
    /// memo disabled is bit-identical to one with it enabled, at one worker
    /// or several.
    #[test]
    fn memo_on_off_and_workers_bit_identical(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut base = PnConfig::default();
        base.ga.max_generations = 8;
        let mut memo_off = base.clone();
        memo_off.ga.memo_capacity = 0;
        let mut memo_on_parallel = base.clone();
        memo_on_parallel.ga.evaluator = dts_ga::Evaluator::ThreadPool { workers: 4 };
        let reference = schedule_batch(&batch, &procs, &base, seed);
        for cfg in [&memo_off, &memo_on_parallel] {
            let run = schedule_batch(&batch, &procs, cfg, seed);
            prop_assert_eq!(&run.queues, &reference.queues);
            prop_assert_eq!(run.best_fitness.to_bits(), reference.best_fitness.to_bits());
            prop_assert_eq!(run.best_makespan.to_bits(), reference.best_makespan.to_bits());
        }
    }

    /// The initial population is always valid and sized as requested.
    #[test]
    fn initial_population_valid(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        pop in 1usize..30,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Prng::seed_from(seed);
        let p = initial_population(&batch, &procs, pop, (0.0, 1.0), &mut rng);
        prop_assert_eq!(p.len(), pop);
        for c in &p {
            prop_assert!(c.validate().is_ok());
            prop_assert_eq!(c.n_tasks() as usize, batch.len());
        }
    }

    /// Remapping a carried elite onto an arbitrary new batch/cluster shape
    /// always yields a valid chromosome — the carry-over lifecycle can
    /// never inject a corrupt individual into the next GA run.
    #[test]
    fn remap_elite_always_valid(
        old_batch in tasks_strategy(),
        old_procs in procs_strategy(),
        new_batch in tasks_strategy(),
        new_procs in procs_strategy(),
        frac in 0.0..=1.0f64,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Prng::seed_from(seed);
        let prev = list_scheduled_individual(&old_batch, &old_procs, frac, &mut rng);
        let c = remap_elite(&prev, &new_batch, &new_procs);
        prop_assert!(c.validate().is_ok(), "{:?}", c.validate());
        prop_assert_eq!(c.n_tasks() as usize, new_batch.len());
        prop_assert_eq!(c.n_procs() as usize, new_procs.len());
    }

    /// A warm-started batch run conserves tasks exactly like a fresh one,
    /// whatever shape the carried seeds came from.
    #[test]
    fn schedule_batch_warm_conserves_tasks(
        old_batch in tasks_strategy(),
        batch in tasks_strategy(),
        procs in procs_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut cfg = PnConfig::default();
        cfg.ga.max_generations = 10;
        let mut rng = Prng::seed_from(seed ^ 0x5EED);
        let prev = list_scheduled_individual(&old_batch, &procs, 0.5, &mut rng);
        let warm = vec![remap_elite(&prev, &batch, &procs)];
        let out = schedule_batch_warm(&batch, &procs, &cfg, &warm, None, seed);
        let mut seen: Vec<u32> = out.queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..batch.len() as u32).collect();
        prop_assert_eq!(seen, expect);
    }

    /// A whole batch run assigns every task exactly once, regardless of
    /// shapes and seeds.
    #[test]
    fn schedule_batch_conserves_tasks(
        batch in tasks_strategy(),
        procs in procs_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut cfg = PnConfig::default();
        cfg.ga.max_generations = 10;
        let out = schedule_batch(&batch, &procs, &cfg, seed);
        let mut seen: Vec<u32> = out.queues.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..batch.len() as u32).collect();
        prop_assert_eq!(seen, expect);
        prop_assert!(out.best_makespan.is_finite());
        prop_assert!(out.best_fitness > 0.0 && out.best_fitness <= 1.0);
    }
}
