//! Offline, in-tree shim of the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The dts build environment has no network access to crates.io, so this
//! workspace vendors the *subset* of the proptest API its test suite uses:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::boxed`];
//! * strategies for numeric ranges, tuples of strategies, [`Just`],
//!   [`collection::vec`], [`bool::ANY`], and [`Union`] (via
//!   [`prop_oneof!`]);
//! * the [`proptest!`] test-harness macro with `#![proptest_config(..)]`,
//!   and the [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. Every case is generated from a deterministic per-test seed
//! (FNV-1a of the test's module path and name, mixed with the case index),
//! so failures are reproducible run-to-run without persistence files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failure of a single generated test case (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type a `proptest!` body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds directly from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives the deterministic RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among a set of boxed strategies (what [`prop_oneof!`]
/// builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given non-empty option set.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// Numeric range strategies. ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let hi = self.end;
                assert!(lo < hi, "invalid range strategy {lo}..{hi}");
                let width = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start();
                let hi = *self.end();
                assert!(lo <= hi, "invalid range strategy {lo}..={hi}");
                if hi == lo {
                    return lo;
                }
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as f64;
                let hi = self.end as f64;
                assert!(lo < hi, "invalid range strategy {lo}..{hi}");
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as f64;
                let hi = *self.end() as f64;
                assert!(lo <= hi, "invalid range strategy {lo}..={hi}");
                // Nudge so both endpoints are reachable.
                let x = lo + rng.next_f64() * (hi - lo);
                x.clamp(lo, hi) as $t
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

// Tuple strategies. --------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

// ---------------------------------------------------------------------------
// Modules: collection, bool, prop
// ---------------------------------------------------------------------------

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "invalid size range {}..{}", r.start, r.end);
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(
                r.start() <= r.end(),
                "invalid size range {}..={}",
                r.start(),
                r.end()
            );
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for `bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirror of real proptest's `prop` module (`prop::bool::ANY`,
/// `prop::collection::vec`, ...).
pub mod prop {
    pub use super::{bool, collection};
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// How many cases each `proptest!` test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(test_name, case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        test_name, case, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Checks a condition inside a `proptest!` body, failing the case (with an
/// optional formatted message) rather than panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Checks two values for equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Builds a [`Union`] choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..10,
            y in -2.0..7.5f64,
            flag in prop::bool::ANY,
            v in prop::collection::vec(0u16..5, 2..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..7.5).contains(&y));
            // Exercise the bool strategy; any drawn value is acceptable.
            let _ = flag;
            prop_assert!((2..=5).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 5, "element {} out of range", e);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            z in prop_oneof![
                (0u32..5).prop_map(|v| v as u64),
                Just(99u64),
            ],
        ) {
            prop_assert!(z < 5 || z == 99);
        }
    }

    #[test]
    fn determinism_per_case() {
        let s = (0u64..1000, crate::collection::vec(0.0..1.0f64, 1..8));
        let a = s.generate(&mut crate::TestRng::for_case("t", 7));
        let b = s.generate(&mut crate::TestRng::for_case("t", 7));
        assert_eq!(a, b);
    }
}
